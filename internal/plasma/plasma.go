// Package plasma implements a one-dimensional electrostatic
// particle-in-cell plasma simulation on the BSP library, after the BSP
// plasma work the paper cites as related (§1.3 reference [28]:
// Nibhanupudi, Norton and Szymanski, "Plasma simulation on networks of
// workstations using the bulk synchronous parallel model").
//
// Physics: electrons in a periodic box with a fixed neutralizing ion
// background. Each step (i) deposits charge to the grid with linear
// (cloud-in-cell) weighting, (ii) solves the periodic 1-D Poisson
// equation for the electric field by a prefix sum with mean subtraction,
// and (iii) gathers the field at particle positions, accelerates and
// moves the particles.
//
// BSP decomposition: the grid is split into strips and each particle
// lives on the owner of its cell. One step costs five supersteps:
// charge-spill routing, strip charge sums, field gauge + edge face
// exchange, the field-energy diagnostic reduce, and particle migration —
// a regular communication pattern (h bounded by spilled cells, p-sized
// reductions and migrating particles) like the paper's ocean code.
package plasma

import (
	"math"
	"math/rand"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/wire"
)

// Particle is one macro-electron.
type Particle struct {
	X, V float64
}

// Config holds the simulation parameters.
type Config struct {
	// Cells is the grid size. 0 means 128.
	Cells int
	// DT is the timestep. 0 means 0.1.
	DT float64
	// QM is the charge-to-mass ratio (negative for electrons). 0 means -1.
	QM float64
	// Steps is the number of timesteps (used by drivers). 0 means 20.
	Steps int
}

func (c Config) cells() int {
	if c.Cells == 0 {
		return 128
	}
	return c.Cells
}

func (c Config) dt() float64 {
	if c.DT == 0 {
		return 0.1
	}
	return c.DT
}

func (c Config) qm() float64 {
	if c.QM == 0 {
		return -1
	}
	return c.QM
}

func (c Config) steps() int {
	if c.Steps == 0 {
		return 20
	}
	return c.Steps
}

// TwoStream initializes the classic two-stream instability: two
// counter-propagating beams with a small sinusoidal position
// perturbation that seeds the unstable mode.
func TwoStream(n int, v0, perturb float64, seed int64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]Particle, n)
	for i := range ps {
		x := (float64(i) + 0.5) / float64(n)
		x += perturb * math.Sin(2*math.Pi*x)
		x -= math.Floor(x)
		v := v0
		if i%2 == 1 {
			v = -v0
		}
		v += 0.01 * v0 * rng.NormFloat64()
		ps[i] = Particle{X: x, V: v}
	}
	return ps
}

// wrap maps x into [0, 1).
func wrap(x float64) float64 {
	x -= math.Floor(x)
	if x >= 1 { // guard against -1e-17 rounding to 1.0
		x = 0
	}
	return x
}

// deposit adds CIC charge for one particle to a density array of ng
// cells covering [0,1) periodically. charge is per macro-particle.
func deposit(rho []float64, ng int, x, charge float64) {
	fx := x * float64(ng)
	j := int(fx)
	frac := fx - float64(j)
	rho[j%ng] += charge * (1 - frac) * float64(ng)
	rho[(j+1)%ng] += charge * frac * float64(ng)
}

// fieldFromRho solves the periodic 1-D Poisson problem: E_j at cell
// faces from the cell densities, via prefix sums with the mean removed
// (periodicity requires zero net charge; the neutralizing background
// enforces it).
func fieldFromRho(rho []float64) []float64 {
	ng := len(rho)
	dx := 1 / float64(ng)
	mean := 0.0
	for _, r := range rho {
		mean += r
	}
	mean /= float64(ng)
	e := make([]float64, ng)
	acc := 0.0
	for j := 0; j < ng; j++ {
		acc += (rho[j] - mean) * dx
		e[j] = acc
	}
	// Remove the average field (the periodic gauge freedom) so momentum
	// is conserved.
	avg := 0.0
	for _, v := range e {
		avg += v
	}
	avg /= float64(ng)
	for j := range e {
		e[j] -= avg
	}
	return e
}

// gather interpolates the cell-centered field at particle position x.
// Cell-centered values are face averages; pairing this with the CIC
// deposit gives the classic momentum-conserving 1-D PIC scheme.
func gather(e []float64, ng int, x float64) float64 {
	fx := x * float64(ng)
	j := int(fx)
	frac := fx - float64(j)
	ej := (e[(j-1+ng)%ng] + e[j%ng]) / 2
	ej1 := (e[j%ng] + e[(j+1)%ng]) / 2
	return ej*(1-frac) + ej1*frac
}

// Sequential advances the particles for cfg.Steps steps and returns the
// field-energy history (the diagnostic the two-stream test watches).
func Sequential(ps []Particle, cfg Config) []float64 {
	ng := cfg.cells()
	charge := 1 / float64(len(ps))
	var energy []float64
	for s := 0; s < cfg.steps(); s++ {
		rho := make([]float64, ng)
		for _, p := range ps {
			deposit(rho, ng, p.X, charge)
		}
		e := fieldFromRho(rho)
		var fe float64
		for _, v := range e {
			fe += v * v
		}
		energy = append(energy, fe/float64(ng))
		dt, qm := cfg.dt(), cfg.qm()
		for i := range ps {
			ps[i].V += qm * gather(e, ng, ps[i].X) * dt
			ps[i].X = wrap(ps[i].X + ps[i].V*dt)
		}
	}
	return energy
}

// ownerOfCell maps a grid cell to its process under the strip
// partition. The proportional guess is corrected against cellRange,
// whose rounding it must invert exactly.
func ownerOfCell(ng, p, cell int) int {
	q := cell * p / ng
	for {
		lo, hi := cellRange(ng, p, q)
		switch {
		case cell < lo:
			q--
		case cell >= hi:
			q++
		default:
			return q
		}
	}
}

// cellRange returns process q's cell strip [lo, hi).
func cellRange(ng, p, q int) (int, int) { return ng * q / p, ng * (q + 1) / p }

// Run advances this process's particles on the BSP machine and returns
// them along with the field-energy history. Each step costs five
// supersteps (charge spill, strip sums, field gauge + edge face, energy
// reduce, particle migration) plus one setup superstep for the global
// particle count.
func Run(c *core.Proc, mine []Particle, cfg Config) ([]Particle, []float64) {
	ng := cfg.cells()
	p := c.P()
	lo, hi := cellRange(ng, p, c.ID())
	totalN := collect.AllReduceInt(c, len(mine), func(a, b int) int { return a + b })
	charge := 1 / float64(totalN)
	dx := 1 / float64(ng)
	var energy []float64
	out := make([]*wire.Writer, p)
	for i := range out {
		out[i] = wire.NewWriter(0)
	}
	for s := 0; s < cfg.steps(); s++ {
		// Superstep A: deposit locally; weights spilled into cells of
		// other strips are routed to their owners.
		rho := make([]float64, ng)
		for _, pt := range mine {
			deposit(rho, ng, pt.X, charge)
		}
		c.AddWork(len(mine) + (hi - lo))
		for j := 0; j < ng; j++ {
			if rho[j] != 0 && ownerOfCell(ng, p, j) != c.ID() {
				w := out[ownerOfCell(ng, p, j)]
				w.Uint32(uint32(j))
				w.Uint32(0)
				w.Float64(rho[j])
				rho[j] = 0
			}
		}
		sendAll(c, out)
		c.Sync()
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			r := wire.NewReader(msg)
			for r.Remaining() >= 16 {
				j := int(r.Uint32())
				r.Uint32()
				rho[j] += r.Float64()
			}
		}
		// Superstep B: every process needs every strip's charge sum to
		// place its local field prefix and remove the mean density.
		stripSum := 0.0
		for j := lo; j < hi; j++ {
			stripSum += rho[j] * dx
		}
		sums := broadcastScalar(c, stripSum)
		total, prefix := 0.0, 0.0
		for q := 0; q < p; q++ {
			if q < c.ID() {
				prefix += sums[q]
			}
			total += sums[q]
		}
		mean := total // Σ rho·dx over the unit box = mean density
		eLoc := make([]float64, hi-lo)
		acc := prefix - mean*float64(lo)*dx
		for j := lo; j < hi; j++ {
			acc += (rho[j] - mean) * dx
			eLoc[j-lo] = acc
		}
		// Superstep C: exchange the strip field integrals (for the
		// periodic gauge: subtract the global average field) and the
		// first face value each strip's left neighbor needs for
		// interpolation at its last cell.
		stripEInt := 0.0
		for _, v := range eLoc {
			stripEInt += v * dx
		}
		if hi > lo {
			// The previous strip needs our first face (its j+1 stencil)
			// and the next strip needs our last face (its j-1 stencil).
			prevOwner := ownerOfCell(ng, p, ((lo-1)+ng)%ng)
			if prevOwner != c.ID() {
				w := out[prevOwner]
				w.Uint32(uint32(lo))
				w.Uint32(2)
				w.Float64(eLoc[0])
			}
			nextOwner := ownerOfCell(ng, p, hi%ng)
			if nextOwner != c.ID() {
				w := out[nextOwner]
				w.Uint32(uint32(hi - 1))
				w.Uint32(2)
				w.Float64(eLoc[hi-1-lo])
			}
		}
		ints := broadcastScalarVia(c, stripEInt, out)
		eAvg := 0.0
		for _, v := range ints.sums {
			eAvg += v
		}
		faceIdxBelow := ((lo - 1) + ng) % ng
		faceIdxAbove := hi % ng
		faceBelow, faceAbove := ints.faces[faceIdxBelow], ints.faces[faceIdxAbove]
		if hi > lo {
			if faceIdxBelow >= lo && faceIdxBelow < hi {
				faceBelow = eLoc[faceIdxBelow-lo] // periodic wrap onto ourselves
			}
			if faceIdxAbove >= lo && faceIdxAbove < hi {
				faceAbove = eLoc[faceIdxAbove-lo]
			}
		}
		for j := range eLoc {
			eLoc[j] -= eAvg
		}
		faceBelow -= eAvg
		faceAbove -= eAvg
		var fe float64
		for _, v := range eLoc {
			fe += v * v
		}
		energy = append(energy, collect.AllReduce(c, fe, collect.SumFloat)/float64(ng))
		// (The energy all-reduce is the fourth superstep\u2019s first hop;
		// see below: migration shares the same superstep count.)
		// Superstep D: accelerate, move, migrate.
		dt, qm := cfg.dt(), cfg.qm()
		faceAt := func(j int) float64 {
			j = ((j % ng) + ng) % ng
			if j >= lo && j < hi {
				return eLoc[j-lo]
			}
			if j == faceIdxBelow {
				return faceBelow
			}
			return faceAbove
		}
		kept := mine[:0]
		for i := range mine {
			pt := mine[i]
			fx := pt.X * float64(ng)
			cell := int(fx)
			frac := fx - float64(cell)
			eC := (faceAt(cell-1) + faceAt(cell)) / 2
			eC1 := (faceAt(cell) + faceAt(cell+1)) / 2
			e := eC*(1-frac) + eC1*frac
			pt.V += qm * e * dt
			pt.X = wrap(pt.X + pt.V*dt)
			nc := int(pt.X * float64(ng))
			if nc >= ng {
				nc = ng - 1
			}
			if q := ownerOfCell(ng, p, nc); q == c.ID() {
				kept = append(kept, pt)
			} else {
				w := out[q]
				w.Float64(pt.X)
				w.Float64(pt.V)
			}
		}
		c.AddWork(len(mine))
		mine = kept
		sendAll(c, out)
		c.Sync()
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			r := wire.NewReader(msg)
			for r.Remaining() >= particleBytes {
				mine = append(mine, Particle{X: r.Float64(), V: r.Float64()})
			}
		}
	}
	return mine, energy
}

// particleBytes is the wire size of a migrating particle.
const particleBytes = 16

// broadcastScalar sends x to every peer tagged with this rank and
// returns the per-rank values (one superstep).
func broadcastScalar(c *core.Proc, x float64) []float64 {
	w := wire.NewWriter(16)
	w.Uint32(uint32(c.ID()))
	w.Uint32(1)
	w.Float64(x)
	for q := 0; q < c.P(); q++ {
		if q != c.ID() {
			c.Send(q, w.Bytes())
		}
	}
	c.Sync()
	sums := make([]float64, c.P())
	sums[c.ID()] = x
	for {
		msg, ok := c.Recv()
		if !ok {
			return sums
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 16 {
			from := int(r.Uint32())
			r.Uint32()
			sums[from] = r.Float64()
		}
	}
}

// faceExchange is broadcastScalar plus the pre-queued edge-face records
// (kind 2) flushed in the same superstep.
type faceExchange struct {
	sums  []float64
	faces map[int]float64
}

func broadcastScalarVia(c *core.Proc, x float64, out []*wire.Writer) faceExchange {
	w := wire.NewWriter(16)
	w.Uint32(uint32(c.ID()))
	w.Uint32(1)
	w.Float64(x)
	for q := 0; q < c.P(); q++ {
		if q != c.ID() {
			c.Send(q, w.Bytes())
		}
	}
	sendAll(c, out)
	c.Sync()
	fe := faceExchange{sums: make([]float64, c.P()), faces: make(map[int]float64)}
	fe.sums[c.ID()] = x
	for {
		msg, ok := c.Recv()
		if !ok {
			return fe
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 16 {
			tag := r.Uint32()
			kind := r.Uint32()
			v := r.Float64()
			if kind == 2 {
				fe.faces[int(tag)] = v
			} else {
				fe.sums[tag] = v
			}
		}
	}
}

func sendAll(c *core.Proc, out []*wire.Writer) {
	for q := 0; q < c.P(); q++ {
		if out[q].Len() > 0 {
			c.Send(q, out[q].Bytes())
			out[q].Reset()
		}
	}
}

// Parallel distributes particles to their cell owners, runs the BSP
// simulation, and returns the final particles (arbitrary order) and the
// field-energy history.
func Parallel(ccfg core.Config, ps []Particle, cfg Config) ([]Particle, []float64, *core.Stats, error) {
	ng := cfg.cells()
	mine := make([][]Particle, ccfg.P)
	for _, pt := range ps {
		cell := int(pt.X * float64(ng))
		if cell >= ng {
			cell = ng - 1
		}
		q := ownerOfCell(ng, ccfg.P, cell)
		mine[q] = append(mine[q], pt)
	}
	final := make([][]Particle, ccfg.P)
	energies := make([][]float64, ccfg.P)
	st, err := core.Run(ccfg, func(c *core.Proc) {
		out, en := Run(c, mine[c.ID()], cfg)
		final[c.ID()] = out
		energies[c.ID()] = en
	})
	if err != nil {
		return nil, nil, nil, err
	}
	var all []Particle
	for _, part := range final {
		all = append(all, part...)
	}
	return all, energies[0], st, nil
}
