package collect

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

func run(t *testing.T, p int, fn func(c *core.Proc)) *core.Stats {
	t.Helper()
	st, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, fn)
	if err != nil {
		t.Fatalf("Run(p=%d): %v", p, err)
	}
	return st
}

func TestBroadcast(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8} {
		for root := 0; root < p; root++ {
			payload := []byte(fmt.Sprintf("hello from %d", root))
			run(t, p, func(c *core.Proc) {
				got := Broadcast(c, root, payload)
				if !bytes.Equal(got, payload) {
					t.Errorf("p=%d root=%d proc %d: got %q", p, root, c.ID(), got)
				}
			})
		}
	}
}

func TestBroadcastTwoPhase(t *testing.T) {
	payloads := [][]byte{
		{},
		[]byte("x"),
		bytes.Repeat([]byte("abcdefg"), 100),
		bytes.Repeat([]byte{7}, 1001), // not divisible by p
	}
	for _, p := range []int{1, 2, 4, 7} {
		for _, payload := range payloads {
			run(t, p, func(c *core.Proc) {
				got := BroadcastTwoPhase(c, 0, payload)
				if !bytes.Equal(got, payload) {
					t.Errorf("p=%d proc %d: got %d bytes, want %d", p, c.ID(), len(got), len(payload))
				}
			})
		}
	}
}

func TestBroadcastTwoPhaseUsesTwoSupersteps(t *testing.T) {
	st := run(t, 4, func(c *core.Proc) {
		BroadcastTwoPhase(c, 0, bytes.Repeat([]byte{1}, 256))
	})
	if st.S() != 2 {
		t.Errorf("S = %d, want 2", st.S())
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	for _, p := range []int{1, 3, 6} {
		run(t, p, func(c *core.Proc) {
			x := float64(c.ID() + 1)
			want := float64(p*(p+1)) / 2
			got := Reduce(c, 0, x, SumFloat)
			if c.ID() == 0 && got != want {
				t.Errorf("p=%d: Reduce = %g, want %g", p, got, want)
			}
			all := AllReduce(c, x, SumFloat)
			if all != want {
				t.Errorf("p=%d proc %d: AllReduce = %g, want %g", p, c.ID(), all, want)
			}
			mx := AllReduce(c, x, MaxFloat)
			if mx != float64(p) {
				t.Errorf("p=%d proc %d: AllReduce max = %g, want %d", p, c.ID(), mx, p)
			}
			mn := AllReduce(c, x, MinFloat)
			if mn != 1 {
				t.Errorf("p=%d proc %d: AllReduce min = %g, want 1", p, c.ID(), mn)
			}
		})
	}
}

func TestAllAndAllOr(t *testing.T) {
	run(t, 4, func(c *core.Proc) {
		if !AllAnd(c, true) {
			t.Errorf("proc %d: AllAnd(all true) = false", c.ID())
		}
		if AllAnd(c, c.ID() != 2) {
			t.Errorf("proc %d: AllAnd(one false) = true", c.ID())
		}
		if AllOr(c, false) {
			t.Errorf("proc %d: AllOr(all false) = true", c.ID())
		}
		if !AllOr(c, c.ID() == 3) {
			t.Errorf("proc %d: AllOr(one true) = false", c.ID())
		}
	})
}

func TestGatherScatter(t *testing.T) {
	const p = 5
	run(t, p, func(c *core.Proc) {
		mine := []byte(fmt.Sprintf("piece-%d", c.ID()))
		got := Gather(c, 2, mine)
		if c.ID() == 2 {
			for i := 0; i < p; i++ {
				if want := fmt.Sprintf("piece-%d", i); string(got[i]) != want {
					t.Errorf("Gather[%d] = %q, want %q", i, got[i], want)
				}
			}
		} else if got != nil {
			t.Errorf("proc %d: Gather returned non-nil", c.ID())
		}
		var pieces [][]byte
		if c.ID() == 1 {
			pieces = make([][]byte, p)
			for i := range pieces {
				pieces[i] = []byte(fmt.Sprintf("scat-%d", i))
			}
		}
		piece := Scatter(c, 1, pieces)
		if want := fmt.Sprintf("scat-%d", c.ID()); string(piece) != want {
			t.Errorf("proc %d: Scatter = %q, want %q", c.ID(), piece, want)
		}
	})
}

func TestAllToAll(t *testing.T) {
	const p = 4
	run(t, p, func(c *core.Proc) {
		out := make([][]byte, p)
		for i := range out {
			out[i] = []byte(fmt.Sprintf("%d->%d", c.ID(), i))
		}
		in := AllToAll(c, out)
		for src := 0; src < p; src++ {
			if want := fmt.Sprintf("%d->%d", src, c.ID()); string(in[src]) != want {
				t.Errorf("proc %d: in[%d] = %q, want %q", c.ID(), src, in[src], want)
			}
		}
	})
}

func TestExclusiveScan(t *testing.T) {
	for _, p := range []int{1, 2, 5} {
		run(t, p, func(c *core.Proc) {
			got := ExclusiveScan(c, c.ID()+1)
			want := c.ID() * (c.ID() + 1) / 2
			if got != want {
				t.Errorf("p=%d proc %d: scan = %d, want %d", p, c.ID(), got, want)
			}
		})
	}
}

func TestCollectiveCosts(t *testing.T) {
	// Broadcast is one superstep; AllReduce is one superstep; the cost
	// documentation in this package should match the measured S.
	st := run(t, 4, func(c *core.Proc) {
		Broadcast(c, 0, []byte("x"))
		AllReduce(c, 1, SumFloat)
		AllToAll(c, make([][]byte, 4))
	})
	if st.S() != 3 {
		t.Errorf("S = %d, want 3 (one per collective)", st.S())
	}
}

func TestScatterPanicsOnBadPieces(t *testing.T) {
	_, err := core.Run(core.Config{P: 2, Transport: transport.SimTransport{}}, func(c *core.Proc) {
		pieces := make([][]byte, 3) // wrong length
		Scatter(c, 0, pieces)
	})
	if err == nil {
		t.Fatal("Scatter with wrong piece count should fail the run")
	}
}

func TestGroupTopology(t *testing.T) {
	for _, tc := range []struct{ p, fanout int }{
		{1, 1}, {2, 2}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 3}, {16, 4},
	} {
		if got := GroupFanout(tc.p); got != tc.fanout {
			t.Errorf("GroupFanout(%d) = %d, want %d", tc.p, got, tc.fanout)
		}
	}
	// Every rank's leader is a leader of itself, and group members are
	// contiguous.
	for _, p := range []int{1, 2, 3, 5, 7, 8, 9} {
		b := GroupFanout(p)
		for id := 0; id < p; id++ {
			l := GroupLeader(id, b)
			if l < 0 || l > id || GroupLeader(l, b) != l {
				t.Errorf("p=%d: GroupLeader(%d, %d) = %d", p, id, b, l)
			}
			if id-l >= b {
				t.Errorf("p=%d: rank %d is %d past its leader %d (fanout %d)", p, id, id-l, l, b)
			}
		}
	}
}

func TestGatherTwoPhase(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 9} {
		for _, root := range []int{0, p - 1} {
			st := run(t, p, func(c *core.Proc) {
				payload := []byte(fmt.Sprintf("from-%d", c.ID()))
				if c.ID()%3 == 2 {
					payload = nil // empty payloads survive the relay
				}
				got := GatherTwoPhase(c, root, payload)
				if c.ID() != root {
					if got != nil {
						t.Errorf("p=%d root=%d: non-root %d got %v", p, root, c.ID(), got)
					}
					return
				}
				if len(got) != p {
					t.Errorf("p=%d root=%d: %d entries", p, root, len(got))
					return
				}
				for src, b := range got {
					want := fmt.Sprintf("from-%d", src)
					if src%3 == 2 {
						want = ""
					}
					if string(b) != want {
						t.Errorf("p=%d root=%d src=%d: got %q, want %q", p, root, src, b, want)
					}
				}
			})
			if st.S() != 2 {
				t.Errorf("p=%d root=%d: S = %d, want 2", p, root, st.S())
			}
		}
	}
}
