// Package collect provides collective operations built exclusively from
// the three Green BSP primitives (Send/Recv/Sync).
//
// The paper argues (§1.3) that, unlike PVM/MPI, the BSP model "assumes a
// very small set of basic functions and (at least in theory) requires any
// other operations to be implemented on top of these functions"; this
// package is that layer. Section 4 names broadcast as the kind of simple
// subroutine whose cost the model predicts well, and the collectives
// benchmark (DESIGN.md E2) exercises exactly that claim.
//
// Every collective documents its BSP cost as (h, s): the h-relation units
// and supersteps it consumes. All collectives must be called collectively
// — by every process in the same superstep.
package collect

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/wire"
)

// clone copies a received view out of the transport's receive buffer.
// Recv views are only valid until the caller's next Sync (see
// core.Proc.Recv); collectives return durable data, so anything handed
// back to the caller is copied first.
func clone(b []byte) []byte {
	return append([]byte(nil), b...)
}

// Broadcast distributes data from root to all processes and returns it.
// Cost: h = (p-1)·|data| at the root, s = 1.
func Broadcast(c *core.Proc, root int, data []byte) []byte {
	if c.ID() == root {
		for i := 0; i < c.P(); i++ {
			if i != root {
				c.Send(i, data)
			}
		}
	}
	c.Sync()
	if c.ID() == root {
		return data
	}
	msg, ok := c.Recv()
	if !ok {
		panic("collect: Broadcast received nothing")
	}
	return clone(msg)
}

// BroadcastTwoPhase distributes data from root in two supersteps:
// scatter p equal pieces, then all-gather them. Cost: h ≈ 2·|data| per
// process, s = 2 — the classic BSP optimization of the naive broadcast
// for large payloads.
func BroadcastTwoPhase(c *core.Proc, root int, data []byte) []byte {
	p := c.P()
	if p == 1 {
		c.Sync()
		c.Sync()
		return data
	}
	var size int
	// Phase 1: root scatters pieces; the total length travels with each
	// piece so receivers can size their reassembly buffers.
	if c.ID() == root {
		size = len(data)
		chunk := (size + p - 1) / p
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			lo := min(i*chunk, size)
			hi := min(lo+chunk, size)
			w := wire.NewWriter(16 + hi - lo)
			w.Int(size)
			w.Int(lo)
			w.Raw(data[lo:hi])
			c.Send(i, w.Bytes())
		}
	}
	c.Sync()
	// Phase 2: every process forwards its piece to everyone else.
	var myPiece []byte
	var myLo int
	if c.ID() == root {
		chunk := (len(data) + p - 1) / p
		myLo = min(root*chunk, len(data))
		myPiece = data[myLo:min(myLo+chunk, len(data))]
		size = len(data)
	} else {
		msg, ok := c.Recv()
		if !ok {
			panic("collect: BroadcastTwoPhase received no piece")
		}
		r := wire.NewReader(msg)
		size = r.Int()
		myLo = r.Int()
		// myPiece is reused after the phase-2 Sync, past the view's
		// validity window, so it must be copied out here.
		myPiece = clone(r.Raw(r.Remaining()))
	}
	w := wire.NewWriter(16 + len(myPiece))
	w.Int(myLo)
	w.Raw(myPiece)
	for i := 0; i < p; i++ {
		if i != c.ID() {
			c.Send(i, w.Bytes())
		}
	}
	c.Sync()
	out := make([]byte, size)
	copy(out[myLo:], myPiece)
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		lo := r.Int()
		piece := r.Raw(r.Remaining())
		copy(out[lo:], piece)
	}
	return out
}

// Reduce combines one float64 per process at root with op and returns
// the result at root (other processes receive 0). Cost: h = p-1 at the
// root, s = 1.
func Reduce(c *core.Proc, root int, x float64, op func(a, b float64) float64) float64 {
	w := wire.NewWriter(8)
	w.Float64(x)
	if c.ID() != root {
		c.Send(root, w.Bytes())
	}
	c.Sync()
	if c.ID() != root {
		return 0
	}
	acc := x
	for {
		msg, ok := c.Recv()
		if !ok {
			return acc
		}
		acc = op(acc, wire.NewReader(msg).Float64())
	}
}

// AllReduce combines one float64 per process with op and returns the
// result on every process. op must be commutative and associative.
// Cost: h = p-1, s = 1.
func AllReduce(c *core.Proc, x float64, op func(a, b float64) float64) float64 {
	w := wire.NewWriter(8)
	w.Float64(x)
	for i := 0; i < c.P(); i++ {
		if i != c.ID() {
			c.Send(i, w.Bytes())
		}
	}
	c.Sync()
	acc := x
	for {
		msg, ok := c.Recv()
		if !ok {
			return acc
		}
		acc = op(acc, wire.NewReader(msg).Float64())
	}
}

// AllReduceInt is AllReduce for int values.
func AllReduceInt(c *core.Proc, x int, op func(a, b int) int) int {
	w := wire.NewWriter(8)
	w.Int(x)
	for i := 0; i < c.P(); i++ {
		if i != c.ID() {
			c.Send(i, w.Bytes())
		}
	}
	c.Sync()
	acc := x
	for {
		msg, ok := c.Recv()
		if !ok {
			return acc
		}
		acc = op(acc, wire.NewReader(msg).Int())
	}
}

// AllAnd returns the conjunction of every process's flag — the global
// termination-detection idiom used by the shortest-paths applications.
// Cost: h = p-1, s = 1.
func AllAnd(c *core.Proc, flag bool) bool {
	x := 0
	if flag {
		x = 1
	}
	return AllReduceInt(c, x, func(a, b int) int { return a * b }) != 0
}

// AllOr returns the disjunction of every process's flag.
func AllOr(c *core.Proc, flag bool) bool {
	x := 0
	if flag {
		x = 1
	}
	return AllReduceInt(c, x, func(a, b int) int { return a + b }) != 0
}

// GroupFanout returns the branching factor b = ⌈√p⌉ of the two-phase
// reduction tree over p processes: ranks are partitioned into ⌈p/b⌉
// contiguous groups of (at most) b members, each led by its lowest
// rank. Concentrating p messages through √p group leaders caps any
// single rank's per-superstep receive volume at ⌈√p⌉ messages instead
// of p — the standard BSP fix for a root that would otherwise absorb
// an O(p²)-unit h-relation (psort's splitter reduction is the staged,
// checkpointable unrolling of this tree).
func GroupFanout(p int) int {
	if p <= 1 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(p))))
}

// GroupLeader returns the leader of the group containing rank id for
// the given fanout: the lowest rank of id's contiguous group.
func GroupLeader(id, fanout int) int {
	return id - id%fanout
}

// GatherTwoPhase collects each process's data at root across two
// supersteps through the ⌈√p⌉-ary group tree of GroupFanout: members
// send to their group leader, leaders forward their group's
// concatenation to root. No rank receives more than ⌈√p⌉ messages in
// any superstep (Gather's root absorbs p at once); the byte volume at
// the root is conserved — a reduction that also wants the root's
// *byte* fan-in bounded must condense at the leaders, which is
// exactly what psort's staged splitter reduction layers on top of
// this tree. The result at root is indexed by source rank; other
// processes return nil. Cost: h = Σ|data| at root as in Gather but
// spread over two supersteps with ⌈√p⌉-bounded message fan-in, s = 2.
func GatherTwoPhase(c *core.Proc, root int, data []byte) [][]byte {
	p, id := c.P(), c.ID()
	b := GroupFanout(p)
	// Groups are laid out in root-relative rank space so the root is
	// always the leader of group 0, whatever rank it holds.
	rid := ((id-root)%p + p) % p
	leader := (GroupLeader(rid, b) + root) % p
	w := wire.NewWriter(8 + len(data))
	w.Int(id)
	w.Raw(data)
	c.Send(leader, w.Bytes())
	c.Sync()
	if rid%b == 0 {
		// Leader: forward the group's length-prefixed payloads. The
		// leader's own phase-1 message is in its inbox too, so the
		// forward is never empty.
		fw := wire.NewWriter(0)
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			fw.Int(len(msg))
			fw.Raw(msg)
		}
		c.Send(root, fw.Bytes())
	}
	c.Sync()
	if id != root {
		return nil
	}
	out := make([][]byte, p)
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() > 0 {
			inner := wire.NewReader(r.Raw(r.Int()))
			src := inner.Int()
			out[src] = clone(inner.Raw(inner.Remaining()))
		}
	}
	return out
}

// Gather collects each process's data at root; the result at root is
// indexed by rank. Other processes return nil. Cost: h = Σ|data| at the
// root, s = 1.
func Gather(c *core.Proc, root int, data []byte) [][]byte {
	w := wire.NewWriter(8 + len(data))
	w.Int(c.ID())
	w.Raw(data)
	c.Send(root, w.Bytes())
	c.Sync()
	if c.ID() != root {
		return nil
	}
	out := make([][]byte, c.P())
	for {
		msg, ok := c.Recv()
		if !ok {
			return out
		}
		r := wire.NewReader(msg)
		src := r.Int()
		out[src] = clone(r.Raw(r.Remaining()))
	}
}

// Scatter distributes pieces[i] from root to process i and returns this
// process's piece. pieces is only read at root and must have length p.
// Cost: h = Σ|pieces| at the root, s = 1.
func Scatter(c *core.Proc, root int, pieces [][]byte) []byte {
	if c.ID() == root {
		if len(pieces) != c.P() {
			panic(fmt.Sprintf("collect: Scatter with %d pieces for %d processes", len(pieces), c.P()))
		}
		for i, piece := range pieces {
			if i != root {
				c.Send(i, piece)
			}
		}
	}
	c.Sync()
	if c.ID() == root {
		return pieces[root]
	}
	msg, ok := c.Recv()
	if !ok {
		panic("collect: Scatter received nothing")
	}
	return clone(msg)
}

// AllToAll delivers out[i] to process i and returns the received pieces
// indexed by source rank. out must have length p. Cost: h = max(Σ|out|,
// Σ|in|), s = 1.
func AllToAll(c *core.Proc, out [][]byte) [][]byte {
	if len(out) != c.P() {
		panic(fmt.Sprintf("collect: AllToAll with %d pieces for %d processes", len(out), c.P()))
	}
	for i, piece := range out {
		w := wire.NewWriter(8 + len(piece))
		w.Int(c.ID())
		w.Raw(piece)
		c.Send(i, w.Bytes())
	}
	c.Sync()
	in := make([][]byte, c.P())
	for {
		msg, ok := c.Recv()
		if !ok {
			return in
		}
		r := wire.NewReader(msg)
		src := r.Int()
		in[src] = clone(r.Raw(r.Remaining()))
	}
}

// ExclusiveScan returns the exclusive prefix sum of x by rank: process i
// receives x_0 + ... + x_{i-1} (0 for rank 0). Cost: h = p-1, s = 1.
func ExclusiveScan(c *core.Proc, x int) int {
	w := wire.NewWriter(8)
	w.Int(x)
	for i := c.ID() + 1; i < c.P(); i++ {
		c.Send(i, w.Bytes())
	}
	c.Sync()
	sum := 0
	for {
		msg, ok := c.Recv()
		if !ok {
			return sum
		}
		sum += wire.NewReader(msg).Int()
	}
}

// MaxFloat is a Reduce/AllReduce operator.
func MaxFloat(a, b float64) float64 { return math.Max(a, b) }

// SumFloat is a Reduce/AllReduce operator.
func SumFloat(a, b float64) float64 { return a + b }

// MinFloat is a Reduce/AllReduce operator.
func MinFloat(a, b float64) float64 { return math.Min(a, b) }
