package mst

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/transport"
)

func TestSequentialIsMST(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		g := graph.Geometric(300, seed)
		res := Sequential(g)
		if err := Check(g, res); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		kw, _ := graph.KruskalMST(g)
		if math.Abs(res.Weight-kw) > 1e-9 {
			t.Fatalf("seed %d: weight %g vs Kruskal %g", seed, res.Weight, kw)
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	g := graph.Geometric(1000, 5)
	want := Sequential(g)
	for _, p := range []int{1, 2, 3, 4, 8} {
		got, st, err := Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, g, Config{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("p=%d: weight %g, want %g", p, got.Weight, want.Weight)
		}
		if err := Check(g, got); err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if st.S() < 1 {
			t.Errorf("p=%d: S = %d", p, st.S())
		}
	}
}

func TestParallelEdgeSetIdentical(t *testing.T) {
	// Under the total edge order the MST is unique, so the parallel
	// edge list must match the sequential one exactly.
	g := graph.Geometric(600, 6)
	want := Sequential(g)
	got, _, err := Parallel(core.Config{P: 4, Transport: transport.ShmTransport{}}, g, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("edge count %d, want %d", len(got.Edges), len(want.Edges))
	}
	for i := range want.Edges {
		if got.Edges[i] != want.Edges[i] {
			t.Fatalf("edge %d: %+v, want %+v", i, got.Edges[i], want.Edges[i])
		}
	}
}

func TestEndgameThresholdVariants(t *testing.T) {
	// Forcing tiny and huge thresholds exercises the pure-Borůvka and
	// pure-endgame paths; both must produce the same tree.
	g := graph.Geometric(500, 7)
	want := Sequential(g)
	for _, thresh := range []int{2, 8, 100000} {
		got, _, err := Parallel(core.Config{P: 4, Transport: transport.ShmTransport{}}, g, Config{EndgameThreshold: thresh})
		if err != nil {
			t.Fatalf("threshold %d: %v", thresh, err)
		}
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("threshold %d: weight %g, want %g", thresh, got.Weight, want.Weight)
		}
	}
}

func TestAcrossTransports(t *testing.T) {
	g := graph.Geometric(400, 8)
	want := Sequential(g)
	for _, tr := range []transport.Transport{
		transport.ShmTransport{}, transport.XchgTransport{},
		transport.TCPTransport{}, transport.SimTransport{},
	} {
		got, _, err := Parallel(core.Config{P: 4, Transport: tr}, g, Config{EndgameThreshold: 16})
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("%s: weight %g, want %g", tr.Name(), got.Weight, want.Weight)
		}
	}
}

func TestConservativeLabelTraffic(t *testing.T) {
	// No superstep may move more label packets per process than the
	// border size plus the component-machinery overhead; the dominant
	// border-exchange supersteps must stay within border counts.
	g := graph.Geometric(800, 9)
	const p = 4
	pt := graph.PartitionStrips(g, p)
	totalBorder := 0
	for _, part := range pt.Parts {
		totalBorder += part.NLocal() - part.NHome
	}
	_, st, err := Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, g, Config{EndgameThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, step := range st.Steps {
		// Label exchanges are bounded by total border copies; the
		// endgame gather at process 0 by the N-1 tree edges; use the
		// loose global bound covering both.
		if step.MaxH > totalBorder+g.N {
			t.Errorf("superstep %d: h = %d suspiciously large (borders %d)", i, step.MaxH, totalBorder)
		}
	}
}

func TestSuperstepsGrowSlowly(t *testing.T) {
	// "the number of supersteps required for this computation grows
	// quite slowly with the problem size" (§3.3.1).
	cfg := core.Config{P: 4, Transport: transport.ShmTransport{}}
	_, stSmall, err := Parallel(cfg, graph.Geometric(200, 10), Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, stBig, err := Parallel(cfg, graph.Geometric(3200, 10), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if stBig.S() > 4*stSmall.S()+40 {
		t.Errorf("S grew too fast: %d (n=200) -> %d (n=3200)", stSmall.S(), stBig.S())
	}
}

func TestQuickParallelWeight(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed int64, pPick uint8) bool {
		p := int(pPick)%4 + 1
		g := graph.Geometric(120, seed)
		want := Sequential(g)
		got, _, err := Parallel(core.Config{P: p, Transport: transport.SimTransport{}}, g, Config{EndgameThreshold: 6})
		if err != nil {
			return false
		}
		return math.Abs(got.Weight-want.Weight) <= 1e-9 && Check(g, got) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestCheckRejectsBadResults(t *testing.T) {
	g := graph.Geometric(50, 11)
	res := Sequential(g)
	if err := Check(g, Result{Weight: res.Weight, Edges: res.Edges[:len(res.Edges)-1]}); err == nil {
		t.Error("missing edge not caught")
	}
	bad := append(append([]graph.Edge(nil), res.Edges[:len(res.Edges)-1]...), res.Edges[0])
	if err := Check(g, Result{Weight: res.Weight, Edges: bad}); err == nil {
		t.Error("cycle not caught")
	}
	if err := Check(g, Result{Weight: res.Weight + 1, Edges: res.Edges}); err == nil {
		t.Error("wrong weight not caught")
	}
}

func TestConfigThreshold(t *testing.T) {
	if (Config{}).threshold(16) != 32 {
		t.Error("default threshold for p=16 should be 32")
	}
	if (Config{}).threshold(32) != 64 {
		t.Error("default threshold should scale with p")
	}
	if (Config{EndgameThreshold: 5}).threshold(16) != 5 {
		t.Error("explicit threshold ignored")
	}
}
