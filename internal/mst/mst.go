// Package mst implements the paper's minimum spanning tree application
// (§3.3), a simplification of the conservative DRAM algorithm of
// Leiserson and Maggs in three phases:
//
//  1. "a completely local phase that computes the local components of
//     the minimum spanning tree": Borůvka steps that merge only along
//     edges whose endpoints are both home nodes, requiring no
//     communication;
//  2. "a parallel phase that uses a simplification of a conservative
//     DRAM algorithm": distributed Borůvka rounds — components exchange
//     labels along partition borders, route per-component minimum
//     outgoing edges to component owners, hook, and resolve the merge
//     forest by pointer jumping;
//  3. "once the number of components becomes small, the program switches
//     to a mixed parallel/sequential phase": every processor reduces its
//     candidate crossing edges per component pair, and a single
//     processor assembles the remaining forest.
//
// The algorithm is conservative for the BSP model in that the number of
// label messages communicated by any processor per round is at most the
// number of its border nodes.
//
// Edges are ordered by (weight, min endpoint, max endpoint); with this
// total order the MST is unique, which makes the parallel result
// bit-comparable against the sequential Kruskal baseline.
package mst

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

// Result is the output of an MST computation.
type Result struct {
	// Weight is the total weight of the spanning tree.
	Weight float64
	// Edges are the tree edges with global endpoints (U < V).
	Edges []graph.Edge
}

// Config holds the tunables of the parallel MST code.
type Config struct {
	// EndgameThreshold is the component count at which the program
	// switches to the mixed parallel/sequential phase. 0 means
	// max(2·p, 32).
	EndgameThreshold int
}

func (c Config) threshold(p int) int {
	if c.EndgameThreshold > 0 {
		return c.EndgameThreshold
	}
	return max(2*p, 32)
}

// edgeLess is the global total order on edges.
func edgeLess(w1 float64, u1, v1 int32, w2 float64, u2, v2 int32) bool {
	if w1 != w2 {
		return w1 < w2
	}
	a1, b1 := minmax(u1, v1)
	a2, b2 := minmax(u2, v2)
	if a1 != a2 {
		return a1 < a2
	}
	return b1 < b2
}

func minmax(a, b int32) (int32, int32) {
	if a < b {
		return a, b
	}
	return b, a
}

// candidate is a potential MST edge between two components.
type candidate struct {
	w     float64
	compU int32 // component the edge leaves
	compV int32 // component the edge enters
	u, v  int32 // global endpoints (u in compU)
	valid bool
}

func better(a, b candidate) candidate {
	if !a.valid {
		return b
	}
	if !b.valid {
		return a
	}
	if edgeLess(a.w, a.u, a.v, b.w, b.u, b.v) {
		return a
	}
	return b
}

// procState is one processor's state across the three phases.
type procState struct {
	c     *core.Proc
	part  *graph.Part
	owner []int32 // global node -> owning process

	// comp[l] is the component label (a global node id) of local node
	// l; border entries mirror the remote owner's label as of the last
	// exchange.
	comp []int32
	// dirty marks home nodes whose label changed since the last border
	// exchange.
	dirty     []bool
	dirtyList []int32

	// parent is the merge-forest pointer for component ids owned by
	// this process.
	parent map[int32]int32

	// chosen accumulates MST edges discovered by this process.
	chosen []graph.Edge

	out []*wire.Writer
}

func newProcState(c *core.Proc, part *graph.Part, owner []int32) *procState {
	s := &procState{c: c, part: part, owner: owner}
	s.comp = make([]int32, part.NLocal())
	for l := range s.comp {
		s.comp[l] = part.Global[l]
	}
	s.dirty = make([]bool, part.NHome)
	s.parent = make(map[int32]int32)
	s.out = make([]*wire.Writer, c.P())
	for i := range s.out {
		s.out[i] = wire.NewWriter(0)
	}
	return s
}

func (s *procState) markDirty(h int32) {
	if !s.dirty[h] && len(s.part.Ghosts[h]) > 0 {
		s.dirty[h] = true
		s.dirtyList = append(s.dirtyList, h)
	}
}

func (s *procState) sendAll() {
	for q := 0; q < s.c.P(); q++ {
		if s.out[q].Len() > 0 {
			s.c.Send(q, s.out[q].Bytes())
			s.out[q].Reset()
		}
	}
}

// localPhase runs Borůvka steps that merge only along home-home edges.
// Safety: the minimum edge incident to a component is in the MST (cut
// property); a component merges locally only when that globally minimal
// incident edge happens to be local.
func (s *procState) localPhase() {
	part := s.part
	uf := graph.NewUnionFind(part.NHome)
	scans := 0
	for {
		// Minimum incident edge per local component, over ALL edges
		// (including edges to border nodes, whose weights are known
		// locally).
		best := make(map[int]candidate)
		for h := int32(0); h < int32(part.NHome); h++ {
			root := uf.Find(int(h))
			adj, w := part.Neighbors(h)
			scans += len(adj) + 1
			for j, v := range adj {
				if part.IsHome(v) && uf.Find(int(v)) == root {
					continue // internal edge
				}
				cand := candidate{
					w: w[j], u: part.Global[h], v: part.Global[v],
					compV: v, valid: true,
				}
				if part.IsHome(v) {
					cand.compV = int32(uf.Find(int(v)))
				} else {
					cand.compV = -1 // remote: blocks local merging
				}
				best[root] = better(best[root], cand)
			}
		}
		merged := false
		for root, cand := range best {
			if cand.compV < 0 {
				continue // minimum edge leaves the partition: stop here
			}
			if uf.Union(root, int(cand.compV)) {
				u, v := minmax(cand.u, cand.v)
				s.chosen = append(s.chosen, graph.Edge{U: u, V: v, W: cand.w})
				merged = true
			}
		}
		if !merged {
			break
		}
	}
	s.c.AddWork(scans) // edge scans across all local Borůvka passes
	// Publish component labels: the component id is the minimum global
	// node id in the component (stable across processes).
	minGlobal := make([]int32, part.NHome)
	for i := range minGlobal {
		minGlobal[i] = -1
	}
	for h := 0; h < part.NHome; h++ {
		r := uf.Find(h)
		g := part.Global[h]
		if minGlobal[r] == -1 || g < minGlobal[r] {
			minGlobal[r] = g
		}
	}
	for h := 0; h < part.NHome; h++ {
		s.comp[h] = minGlobal[uf.Find(h)]
		s.markDirty(int32(h))
	}
	// Every component root this process owns gets a parent entry.
	for h := 0; h < part.NHome; h++ {
		c := s.comp[h]
		if c == part.Global[h] {
			s.parent[c] = c
		}
	}
}

// exchangeLabels sends changed home labels to border holders (superstep
// 1 of each round) and absorbs the peers' labels.
func (s *procState) exchangeLabels() {
	part := s.part
	for _, h := range s.dirtyList {
		s.dirty[h] = false
		g := uint32(part.Global[h])
		cl := uint32(s.comp[h])
		for _, q := range part.Ghosts[h] {
			w := s.out[q]
			w.Uint32(g)
			w.Uint32(cl)
		}
	}
	s.dirtyList = s.dirtyList[:0]
	s.sendAll()
	s.c.Sync()
	for {
		msg, ok := s.c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 8 {
			g := int32(r.Uint32())
			cl := int32(r.Uint32())
			if l, ok := part.LocalOf(g); ok && !part.IsHome(l) {
				s.comp[l] = cl
			}
		}
	}
}

func writeCandidate(w *wire.Writer, c candidate) {
	w.Float64(c.w)
	w.Uint32(uint32(c.compU))
	w.Uint32(uint32(c.compV))
	w.Uint32(uint32(c.u))
	w.Uint32(uint32(c.v))
}

func readCandidate(r *wire.Reader) candidate {
	return candidate{
		w:     r.Float64(),
		compU: int32(r.Uint32()),
		compV: int32(r.Uint32()),
		u:     int32(r.Uint32()),
		v:     int32(r.Uint32()),
		valid: true,
	}
}

const candBytes = 24

// boruvkaRound runs one distributed Borůvka round. It returns the
// number of live components after the round (global).
func (s *procState) boruvkaRound() int {
	part, c := s.part, s.c

	// Superstep A: refresh border labels.
	s.exchangeLabels()

	// Local reduction: minimum outgoing edge per component.
	best := make(map[int32]candidate)
	c.AddWork(len(part.Adj) + part.NHome) // full home-edge scan
	for h := int32(0); h < int32(part.NHome); h++ {
		cu := s.comp[h]
		adj, w := part.Neighbors(h)
		for j, v := range adj {
			cv := s.comp[v]
			if cv == cu {
				continue
			}
			best[cu] = better(best[cu], candidate{
				w: w[j], compU: cu, compV: cv,
				u: part.Global[h], v: part.Global[v], valid: true,
			})
		}
	}
	// Superstep B: route candidates to component owners.
	for comp, cand := range best {
		writeCandidate(s.out[s.owner[comp]], cand)
		_ = comp
	}
	s.sendAll()
	c.Sync()
	mins := make(map[int32]candidate)
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= candBytes {
			cand := readCandidate(r)
			mins[cand.compU] = better(mins[cand.compU], cand)
		}
	}
	// Hook: parent[A] = B for A's minimum outgoing edge (A,B).
	hookEdge := make(map[int32]candidate)
	for a, cand := range mins {
		s.parent[a] = cand.compV
		hookEdge[a] = cand
	}
	// Superstep C: notify owner(B) that A hooked onto B.
	for a, cand := range hookEdge {
		w := s.out[s.owner[cand.compV]]
		w.Uint32(uint32(a))
		w.Uint32(uint32(cand.compV))
	}
	s.sendAll()
	c.Sync()
	incoming := make(map[int32]map[int32]bool) // b -> set of hooked a
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 8 {
			a := int32(r.Uint32())
			b := int32(r.Uint32())
			if incoming[b] == nil {
				incoming[b] = make(map[int32]bool)
			}
			incoming[b][a] = true
		}
	}
	// Record MST edges and break 2-cycles (A→B and B→A always share
	// the same edge under a total edge order; the smaller id becomes
	// the root and records the edge).
	for a, cand := range hookEdge {
		b := cand.compV
		twoCycle := incoming[a] != nil && incoming[a][b]
		if twoCycle && a > b {
			continue // the other side records it
		}
		u, v := minmax(cand.u, cand.v)
		s.chosen = append(s.chosen, graph.Edge{U: u, V: v, W: cand.w})
	}
	for a := range hookEdge {
		b := s.parent[a]
		if incoming[a] != nil && incoming[a][b] && a < b {
			s.parent[a] = a // 2-cycle: smaller id is the new root
		}
	}
	// Pointer jumping until every owned id points at a root.
	s.pointerJump()
	// Relabel home nodes: query owner(old comp) for the root.
	s.relabelHomes()
	// Global component count: roots alive among owned ids that are
	// actually used as labels... every surviving label is a root; count
	// distinct labels owned by this process.
	liveRoots := make(map[int32]bool)
	for h := 0; h < part.NHome; h++ {
		cl := s.comp[h]
		if s.owner[cl] == int32(c.ID()) {
			liveRoots[cl] = true
		}
	}
	return collect.AllReduceInt(c, len(liveRoots), func(a, b int) int { return a + b })
}

// pointerJump repeatedly replaces parent[c] with parent[parent[c]] until
// no owned pointer changes anywhere.
func (s *procState) pointerJump() {
	c := s.c
	for {
		// Query owner(parent[x]) for parent[parent[x]].
		type q struct{ x, px int32 }
		var queries []q
		for x, px := range s.parent {
			if px != x {
				queries = append(queries, q{x, px})
			}
		}
		sort.Slice(queries, func(i, j int) bool { return queries[i].x < queries[j].x })
		for _, qu := range queries {
			w := s.out[s.owner[qu.px]]
			w.Uint32(uint32(qu.x))
			w.Uint32(uint32(qu.px))
		}
		s.sendAll()
		c.Sync()
		// Answer queries.
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			r := wire.NewReader(msg)
			for r.Remaining() >= 8 {
				x := int32(r.Uint32())
				px := int32(r.Uint32())
				gp, ok := s.parent[px]
				if !ok {
					gp = px // unknown id acts as its own root
				}
				w := s.out[s.owner[x]]
				w.Uint32(uint32(x))
				w.Uint32(uint32(gp))
			}
		}
		s.sendAll()
		c.Sync()
		changed := false
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			r := wire.NewReader(msg)
			for r.Remaining() >= 8 {
				x := int32(r.Uint32())
				gp := int32(r.Uint32())
				if s.parent[x] != gp {
					s.parent[x] = gp
					changed = true
				}
			}
		}
		if !collect.AllOr(c, changed) {
			return
		}
	}
}

// relabelHomes updates every home node's label to its component's root
// by querying the old label's owner. Queries carry the sender rank so
// the owner can address the reply; both legs are one superstep.
func (s *procState) relabelHomes() {
	part, c := s.part, s.c
	distinct := make(map[int32]bool)
	for h := 0; h < part.NHome; h++ {
		distinct[s.comp[h]] = true
	}
	ids := make([]int32, 0, len(distinct))
	for id := range distinct {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		w := s.out[s.owner[id]]
		w.Uint32(uint32(id))
		w.Uint32(uint32(c.ID()))
	}
	s.sendAll()
	c.Sync()
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 8 {
			id := int32(r.Uint32())
			from := int(r.Uint32())
			root, ok := s.parent[id]
			if !ok {
				root = id
			}
			w := s.out[from]
			w.Uint32(uint32(id))
			w.Uint32(uint32(root))
		}
	}
	s.sendAll()
	c.Sync()
	remap := make(map[int32]int32, len(ids))
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 8 {
			id := int32(r.Uint32())
			root := int32(r.Uint32())
			remap[id] = root
		}
	}
	for h := 0; h < part.NHome; h++ {
		if root, ok := remap[s.comp[h]]; ok && root != s.comp[h] {
			s.comp[h] = root
			s.markDirty(int32(h))
		}
	}
	// Roots relabeled components away from this process; keep parent
	// entries for any id we own (stale ids keep forwarding correctly
	// because pointer jumping flattened them).
}

// edgeBytes is the wire size of one MST edge record: (u, v, w) packs
// exactly into one 16-byte Green BSP packet.
const edgeBytes = 16

func writeEdge(w *wire.Writer, e graph.Edge) {
	w.Uint32(uint32(e.U))
	w.Uint32(uint32(e.V))
	w.Float64(e.W)
}

func readEdge(r *wire.Reader) graph.Edge {
	return graph.Edge{U: int32(r.Uint32()), V: int32(r.Uint32()), W: r.Float64()}
}

// endgame is the mixed parallel/sequential phase: "first uses all the
// processors to find subforests of the remaining components using edges
// that are guaranteed to be in the minimum spanning tree, and then uses
// a single processor to assemble the forests into components."
//
// Every processor reduces, per unordered component pair, its minimum
// crossing edge and sends the candidates to process 0, which finishes
// with Kruskal on the contracted graph. Each per-pair local minimum is
// either the global minimum for that pair or dominated by it, so the
// union of the candidates contains the MST of the contracted graph.
func (s *procState) endgame(comps int) Result {
	part, c := s.part, s.c
	s.exchangeLabels()
	if comps > 1 {
		c.AddWork(len(part.Adj) + part.NHome)
		type pair struct{ a, b int32 }
		best := make(map[pair]candidate)
		for h := int32(0); h < int32(part.NHome); h++ {
			cu := s.comp[h]
			adj, w := part.Neighbors(h)
			for j, v := range adj {
				cv := s.comp[v]
				if cv == cu {
					continue
				}
				a, b := minmax(cu, cv)
				k := pair{a, b}
				best[k] = better(best[k], candidate{
					w: w[j], compU: cu, compV: cv,
					u: part.Global[h], v: part.Global[v], valid: true,
				})
			}
		}
		for _, cand := range best {
			writeCandidate(s.out[0], cand)
		}
	}
	s.sendAll()
	c.Sync()
	if c.ID() == 0 {
		var cands []candidate
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			r := wire.NewReader(msg)
			for r.Remaining() >= candBytes {
				cands = append(cands, readCandidate(r))
			}
		}
		c.AddWork(4 * len(cands)) // sequential assembly at process 0
		sort.Slice(cands, func(i, j int) bool {
			return edgeLess(cands[i].w, cands[i].u, cands[i].v, cands[j].w, cands[j].u, cands[j].v)
		})
		uf := make(map[int32]int32)
		var find func(x int32) int32
		find = func(x int32) int32 {
			r, ok := uf[x]
			if !ok || r == x {
				return x
			}
			root := find(r)
			uf[x] = root
			return root
		}
		for _, cand := range cands {
			ra, rb := find(cand.compU), find(cand.compV)
			if ra == rb {
				continue
			}
			uf[ra] = rb
			u, v := minmax(cand.u, cand.v)
			s.chosen = append(s.chosen, graph.Edge{U: u, V: v, W: cand.w})
		}
	}
	// Gather every chosen edge at process 0 (one packet per edge).
	if c.ID() != 0 {
		for _, e := range s.chosen {
			writeEdge(s.out[0], e)
		}
	}
	s.sendAll()
	c.Sync()
	var res Result
	if c.ID() == 0 {
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			r := wire.NewReader(msg)
			for r.Remaining() >= edgeBytes {
				s.chosen = append(s.chosen, readEdge(r))
			}
		}
		res.Edges = s.chosen
		for _, e := range res.Edges {
			res.Weight += e.W
		}
	}
	// Broadcast the total weight so every process returns the answer.
	res.Weight = collect.AllReduce(c, res.Weight, collect.SumFloat)
	return res
}

// Run executes the three-phase MST algorithm on one BSP process. All
// processes return the tree weight; process 0 additionally returns the
// tree edges.
func Run(c *core.Proc, part *graph.Part, owner []int32, cfg Config) Result {
	s := newProcState(c, part, owner)
	s.localPhase()
	thresh := cfg.threshold(c.P())
	comps := collect.AllReduceInt(c, s.countOwnedRoots(), func(a, b int) int { return a + b })
	for comps > thresh {
		comps = s.boruvkaRound()
	}
	return s.endgame(comps)
}

// countOwnedRoots counts distinct component labels owned by this
// process among its home nodes.
func (s *procState) countOwnedRoots() int {
	live := make(map[int32]bool)
	for h := 0; h < s.part.NHome; h++ {
		cl := s.comp[h]
		if s.owner[cl] == int32(s.c.ID()) {
			live[cl] = true
		}
	}
	return len(live)
}

// Parallel partitions g, runs the BSP algorithm and returns the MST
// (weight and edges) along with the run statistics.
func Parallel(cfg core.Config, g *graph.Graph, mcfg Config) (Result, *core.Stats, error) {
	pt := graph.PartitionStrips(g, cfg.P)
	results := make([]Result, cfg.P)
	st, err := core.Run(cfg, func(c *core.Proc) {
		results[c.ID()] = Run(c, pt.Parts[c.ID()], pt.Owner, mcfg)
	})
	if err != nil {
		return Result{}, nil, err
	}
	res := results[0] // process 0 holds the edge list
	sort.Slice(res.Edges, func(i, j int) bool {
		return edgeLess(res.Edges[i].W, res.Edges[i].U, res.Edges[i].V,
			res.Edges[j].W, res.Edges[j].U, res.Edges[j].V)
	})
	return res, st, nil
}

// Sequential computes the MST with Kruskal's algorithm under the same
// edge order as the parallel code, so edge lists are directly
// comparable.
func Sequential(g *graph.Graph) Result {
	list := g.EdgeList()
	sort.Slice(list, func(i, j int) bool {
		return edgeLess(list[i].W, list[i].U, list[i].V, list[j].W, list[j].U, list[j].V)
	})
	uf := graph.NewUnionFind(g.N)
	var res Result
	for _, e := range list {
		if uf.Union(int(e.U), int(e.V)) {
			res.Edges = append(res.Edges, e)
			res.Weight += e.W
			if len(res.Edges) == g.N-1 {
				break
			}
		}
	}
	return res
}

// Check verifies that a Result is a spanning tree of g with the claimed
// weight; tests use it as an oracle-independent validity check.
func Check(g *graph.Graph, res Result) error {
	if len(res.Edges) != g.N-1 {
		return fmt.Errorf("mst: %d edges, want %d", len(res.Edges), g.N-1)
	}
	uf := graph.NewUnionFind(g.N)
	var w float64
	for _, e := range res.Edges {
		if !uf.Union(int(e.U), int(e.V)) {
			return fmt.Errorf("mst: edge (%d,%d) closes a cycle", e.U, e.V)
		}
		w += e.W
	}
	if math.Abs(w-res.Weight) > 1e-6 {
		return fmt.Errorf("mst: edge weights sum to %g, result claims %g", w, res.Weight)
	}
	return nil
}
