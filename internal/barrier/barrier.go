// Package barrier provides reusable p-way synchronization barriers.
//
// The shared-memory Green BSP implementation synchronizes "using p
// variables in shared memory that are incremented by the processors...
// Processor 0 then spins on variables 1 through p-1, while processors 1
// through p-1 spin on variable 0" (paper, Appendix B.1). That scheme is
// implemented here as Central; SenseReversing, Dissemination and ChanTree
// are alternatives benchmarked by the barrier ablation (DESIGN.md A2).
//
// All barriers in this package are reusable: a process may call Wait again
// immediately after it returns. Spin loops yield to the Go scheduler so
// the barriers remain live even on a single-CPU host.
package barrier

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Barrier blocks each of p participants in Wait until all have arrived.
type Barrier interface {
	// Wait blocks participant id (0 <= id < P) until all P participants
	// have called Wait for the current round.
	Wait(id int)
	// P returns the number of participants.
	P() int
}

// spin yields the processor while waiting; on a single-CPU host a raw spin
// would starve the peers this barrier is waiting for.
func spin() { runtime.Gosched() }

// Central is the paper's barrier: per-process arrival counters; process
// 0 waits for everyone, then everyone waits for process 0's release.
type Central struct {
	p       int
	arrive  []atomic.Uint64 // one slot per participant, padded
	release atomic.Uint64
	round   []uint64 // per-participant local round counter, padded
}

// NewCentral returns a Central barrier for p participants.
func NewCentral(p int) *Central {
	return &Central{
		p:      p,
		arrive: make([]atomic.Uint64, p*8), // *8 pads to separate cache lines
		round:  make([]uint64, p*8),
	}
}

// P returns the number of participants.
func (b *Central) P() int { return b.p }

// Wait implements Barrier.
func (b *Central) Wait(id int) {
	b.round[id*8]++
	r := b.round[id*8]
	b.arrive[id*8].Store(r)
	if id == 0 {
		for i := 1; i < b.p; i++ {
			for b.arrive[i*8].Load() < r {
				spin()
			}
		}
		b.release.Store(r)
		return
	}
	for b.release.Load() < r {
		spin()
	}
}

// SenseReversing is a classic central counter barrier with a reversing
// sense flag; one atomic decrement per arrival.
type SenseReversing struct {
	p     int
	count atomic.Int64
	sense atomic.Bool
	local []bool // per-participant sense, padded
	pad   []byte
}

// NewSenseReversing returns a sense-reversing barrier for p participants.
func NewSenseReversing(p int) *SenseReversing {
	b := &SenseReversing{p: p, local: make([]bool, p*64)}
	b.count.Store(int64(p))
	return b
}

// P returns the number of participants.
func (b *SenseReversing) P() int { return b.p }

// Wait implements Barrier.
func (b *SenseReversing) Wait(id int) {
	mySense := !b.local[id*64]
	b.local[id*64] = mySense
	if b.count.Add(-1) == 0 {
		b.count.Store(int64(b.p))
		b.sense.Store(mySense)
		return
	}
	for b.sense.Load() != mySense {
		spin()
	}
}

// Dissemination is the log2(p)-round dissemination barrier. Each round k,
// participant i signals participant (i+2^k) mod p and waits for a signal
// from (i-2^k) mod p.
type Dissemination struct {
	p      int
	rounds int
	// flags[round][i] counts signals received by i in this round across
	// all uses; comparing against a per-use epoch makes the barrier
	// reusable without resetting.
	flags [][]atomic.Uint64
	epoch []uint64 // per-participant use counter, padded
}

// NewDissemination returns a dissemination barrier for p participants.
func NewDissemination(p int) *Dissemination {
	rounds := 0
	for 1<<rounds < p {
		rounds++
	}
	b := &Dissemination{p: p, rounds: rounds, epoch: make([]uint64, p*8)}
	b.flags = make([][]atomic.Uint64, rounds)
	for k := range b.flags {
		b.flags[k] = make([]atomic.Uint64, p*8)
	}
	return b
}

// P returns the number of participants.
func (b *Dissemination) P() int { return b.p }

// Wait implements Barrier.
func (b *Dissemination) Wait(id int) {
	if b.p == 1 {
		return
	}
	b.epoch[id*8]++
	e := b.epoch[id*8]
	for k := 0; k < b.rounds; k++ {
		peer := (id + 1<<k) % b.p
		b.flags[k][peer*8].Add(1)
		for b.flags[k][id*8].Load() < e {
			spin()
		}
	}
}

// ChanTree synchronizes via channels arranged as a binary reduction tree
// followed by a broadcast, the idiomatic Go structure.
type ChanTree struct {
	p    int
	up   []chan struct{} // child -> parent arrival
	down []chan struct{} // parent -> child release
}

// NewChanTree returns a channel-tree barrier for p participants.
func NewChanTree(p int) *ChanTree {
	b := &ChanTree{p: p, up: make([]chan struct{}, p), down: make([]chan struct{}, p)}
	for i := 0; i < p; i++ {
		b.up[i] = make(chan struct{}, 1)
		b.down[i] = make(chan struct{}, 1)
	}
	return b
}

// P returns the number of participants.
func (b *ChanTree) P() int { return b.p }

// Wait implements Barrier.
func (b *ChanTree) Wait(id int) {
	l, r := 2*id+1, 2*id+2
	if l < b.p {
		<-b.up[l]
	}
	if r < b.p {
		<-b.up[r]
	}
	if id != 0 {
		b.up[id] <- struct{}{}
		<-b.down[id]
	}
	if l < b.p {
		b.down[l] <- struct{}{}
	}
	if r < b.p {
		b.down[r] <- struct{}{}
	}
}

// WaitGroupBarrier is a mutex/cond based barrier; the simplest correct
// implementation, used as the ablation baseline.
type WaitGroupBarrier struct {
	p     int
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	round uint64
}

// NewWaitGroup returns a cond-based barrier for p participants.
func NewWaitGroup(p int) *WaitGroupBarrier {
	b := &WaitGroupBarrier{p: p}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// P returns the number of participants.
func (b *WaitGroupBarrier) P() int { return b.p }

// Wait implements Barrier.
func (b *WaitGroupBarrier) Wait(id int) {
	b.mu.Lock()
	round := b.round
	b.count++
	if b.count == b.p {
		b.count = 0
		b.round++
		b.cond.Broadcast()
	} else {
		for b.round == round {
			b.cond.Wait()
		}
	}
	b.mu.Unlock()
}

// New returns a barrier implementation by name: "central",
// "sense", "dissemination", "chantree" or "cond". It panics on an
// unknown name; the set of names is fixed at compile time.
func New(name string, p int) Barrier {
	switch name {
	case "central":
		return NewCentral(p)
	case "sense":
		return NewSenseReversing(p)
	case "dissemination":
		return NewDissemination(p)
	case "chantree":
		return NewChanTree(p)
	case "cond":
		return NewWaitGroup(p)
	default:
		panic("barrier: unknown barrier " + name)
	}
}

// Names lists the available barrier implementations.
func Names() []string {
	return []string{"central", "sense", "dissemination", "chantree", "cond"}
}
