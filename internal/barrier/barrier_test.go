package barrier

import (
	"sync"
	"sync/atomic"
	"testing"
)

// checkBarrier runs p goroutines through rounds barriers and verifies
// that no participant enters round r+1 before every participant has
// finished round r.
func checkBarrier(t *testing.T, b Barrier, p, rounds int) {
	t.Helper()
	var phase atomic.Int64 // count of (participant, round) completions
	var wg sync.WaitGroup
	for id := 0; id < p; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				phase.Add(1)
				b.Wait(id)
				// After the barrier, every participant must have
				// completed at least (r+1)*p arrivals in total.
				if got := phase.Load(); got < int64((r+1)*p) {
					t.Errorf("participant %d passed barrier round %d with only %d arrivals (want >= %d)", id, r, got, (r+1)*p)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestBarriers(t *testing.T) {
	for _, name := range Names() {
		for _, p := range []int{1, 2, 3, 4, 7, 8, 16} {
			b := New(name, p)
			if b.P() != p {
				t.Errorf("%s: P() = %d, want %d", name, b.P(), p)
			}
			checkBarrier(t, b, p, 25)
		}
	}
}

func TestBarrierReusableManyRounds(t *testing.T) {
	for _, name := range Names() {
		checkBarrier(t, New(name, 4), 4, 500)
	}
}

func TestNewUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with unknown name should panic")
		}
	}()
	New("bogus", 2)
}

func TestNamesConstructAll(t *testing.T) {
	for _, name := range Names() {
		if b := New(name, 3); b == nil {
			t.Errorf("New(%q) = nil", name)
		}
	}
}
