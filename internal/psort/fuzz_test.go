package psort

// FuzzSampleSort drives the whole sort end to end on fuzz-shaped inputs
// and, separately, the routing walk against adversarial splitter sets.
// The invariants are exactly the skew suite's, but over arbitrary bit
// patterns (including NaNs, infinities, denormals and duplicate runs)
// and arbitrary (p, mode, ℓ, seed) combinations:
//
//   - the output is globally sorted in the codec order,
//   - the output is a bitwise permutation of the input,
//   - every rank's share obeys ImbalanceBound,
//   - splitter selection is monotone in the tagged order, and
//   - the routing cut is total: monotone cuts covering [0, n] exactly,
//     whatever (possibly duplicate-heavy) splitter set the root picked.
//
// Run `make fuzz` for the brief CI pass or `go test -fuzz=FuzzSampleSort
// ./internal/psort/` to explore further.

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

// fuzzMaxN caps the decoded input so one fuzz execution stays cheap.
const fuzzMaxN = 2048

// fuzzData decodes raw as little-endian float64 bit patterns.
func fuzzData(raw []byte) []float64 {
	n := min(len(raw)/8, fuzzMaxN)
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}

func FuzzSampleSort(f *testing.F) {
	le := func(vs ...float64) []byte {
		b := make([]byte, 0, 8*len(vs))
		for _, v := range vs {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
		return b
	}
	// Seed corpus: the shapes that historically break sample sorts.
	f.Add(uint8(3), uint8(0), uint8(2), int64(1), []byte{})
	f.Add(uint8(4), uint8(1), uint8(0), int64(42), le(5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5, 5))
	f.Add(uint8(5), uint8(0), uint8(1), int64(7), le(9, 8, 7, 6, 5, 4, 3, 2, 1, 0))
	f.Add(uint8(2), uint8(1), uint8(3), int64(0), le(math.NaN(), 0, math.NaN(), math.Inf(1), math.Inf(-1), 0))
	f.Add(uint8(6), uint8(0), uint8(0), int64(-1), le(0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2))
	f.Add(uint8(3), uint8(1), uint8(2), int64(99), le(math.SmallestNonzeroFloat64, -0.0, 0.0, math.MaxFloat64))

	cd := Float64Codec{}
	f.Fuzz(func(t *testing.T, pb, modeb, overb uint8, seed int64, raw []byte) {
		p := 2 + int(pb%5)
		data := fuzzData(raw)
		n := len(data)
		opt := Resolve(Options{
			Mode:       Mode(modeb % 2),
			Oversample: int(overb % 5), // 0 exercises DefaultRatio
			Seed:       seed,
		}, n, p, 8)

		parts, st, err := SortParallel(core.Config{P: p, Transport: transport.ShmTransport{}}, cd, data, opt)
		if err != nil {
			t.Fatal(err)
		}
		if st.S() != 4 {
			t.Fatalf("S = %d, want 4", st.S())
		}

		// Sortedness in the codec order and the imbalance bound.
		bound := ImbalanceBound(n, p, opt.Oversample)
		var prev float64
		first := true
		for q, part := range parts {
			if len(part) > bound {
				t.Fatalf("rank %d holds %d elements, bound (n=%d p=%d l=%d) is %d",
					q, len(part), n, p, opt.Oversample, bound)
			}
			for i, v := range part {
				if !first && cd.Less(v, prev) {
					t.Fatalf("rank %d element %d: %v sorts before predecessor %v", q, i, v, prev)
				}
				prev, first = v, false
			}
		}
		checkPermutation(t, data, parts)

		// Routing totality against an adversarial splitter set: build
		// p−1 splitters straight from fuzz-chosen positions (duplicates
		// and all), sort them into the tagged order the root guarantees,
		// and require the cut walk to be monotone and to cover [0, n]
		// with no element unrouted — whatever the splitters were.
		if n > 0 {
			sorted := append([]float64(nil), data...)
			sortLocal(cd, sorted)
			spl := make([]tagged[float64], 0, p-1)
			for j := 1; j < p; j++ {
				pos := (int(pb)*j + int(overb) + len(raw)*j) % n
				spl = append(spl, tagged[float64]{v: sorted[pos], rank: int32(j % 2), idx: int32(pos)})
			}
			sortTagged(cd, spl)
			for j := 1; j < len(spl); j++ {
				if lessTag(cd, spl[j], spl[j-1]) {
					t.Fatalf("splitters not monotone in the tagged order at %d", j)
				}
			}
			cuts := cutRun(cd, sorted, 0, spl, p)
			if cuts[0] != 0 || cuts[p] != n {
				t.Fatalf("cuts do not cover [0, %d]: %v", n, cuts)
			}
			for q := 1; q <= p; q++ {
				if cuts[q] < cuts[q-1] {
					t.Fatalf("cuts not monotone: %v", cuts)
				}
			}
		}
	})
}
