// Skewed-input property suite: the oversampling sort must deliver its
// three guarantees — global sortedness, permutation preservation, and
// the (1+1/ℓ)·n/p per-rank imbalance bound — on every transport, on
// odd and prime process counts, and on exactly the input shapes that
// break naive sample sorts: heavy duplication (splitters collide
// without origin tags), presorted and reverse-sorted runs (regular
// samples all land in one region), and Zipf-skewed keys.
package psort

import (
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

func skewTransports() map[string]transport.Transport {
	return map[string]transport.Transport{
		"shm":  transport.ShmTransport{},
		"xchg": transport.XchgTransport{},
		"tcp":  transport.TCPTransport{},
		"sim":  transport.SimTransport{},
	}
}

// distributions maps a name to a generator of n elements.
var distributions = map[string]func(n int) []float64{
	"uniform": func(n int) []float64 { return RandomData(n, 1996) },
	"zipfian": func(n int) []float64 { return ZipfData(n, 1996) },
	"presorted": func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)
		}
		return out
	},
	"reverse": func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(n - i)
		}
		return out
	},
	"all-equal": func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = 5
		}
		return out
	},
	// Adversarial duplicates: three values tiled so every splitter
	// candidate collides with a plateau spanning many ranks.
	"adversarial-dup": func(n int) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i % 3)
		}
		return out
	},
}

// checkSorted asserts the concatenation of parts is globally sorted.
func checkSorted(t *testing.T, parts [][]float64) {
	t.Helper()
	prev := math.Inf(-1)
	for q, part := range parts {
		for i, v := range part {
			if v < prev {
				t.Fatalf("rank %d element %d: %g < predecessor %g", q, i, v, prev)
			}
			prev = v
		}
	}
}

// checkPermutation asserts the multiset of parts equals the multiset
// of data (bitwise, so NaN-safe).
func checkPermutation(t *testing.T, data []float64, parts [][]float64) {
	t.Helper()
	got := make([]uint64, 0, len(data))
	for _, part := range parts {
		for _, v := range part {
			got = append(got, math.Float64bits(v))
		}
	}
	want := make([]uint64, 0, len(data))
	for _, v := range data {
		want = append(want, math.Float64bits(v))
	}
	if len(got) != len(want) {
		t.Fatalf("output has %d elements, want %d", len(got), len(want))
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output is not a permutation of the input (first multiset mismatch at sorted position %d)", i)
		}
	}
}

// checkImbalance asserts every rank's share obeys ImbalanceBound.
func checkImbalance(t *testing.T, n, p, l int, parts [][]float64) {
	t.Helper()
	bound := ImbalanceBound(n, p, l)
	for q, part := range parts {
		if len(part) > bound {
			t.Fatalf("rank %d holds %d elements, imbalance bound (n=%d p=%d l=%d) is %d",
				q, len(part), n, p, l, bound)
		}
	}
}

// TestSkewSuite: distributions × transports × odd/prime p × both
// sampling modes.
func TestSkewSuite(t *testing.T) {
	const n = 1500
	for tname, tr := range skewTransports() {
		for dname, gen := range distributions {
			for _, p := range []int{3, 5} {
				for _, mode := range []Mode{ModeRegular, ModeRandom} {
					mname := "regular"
					if mode == ModeRandom {
						mname = "random"
					}
					t.Run(tname+"/"+dname+"/p="+string(rune('0'+p))+"/"+mname, func(t *testing.T) {
						data := gen(n)
						opt := Resolve(Options{Mode: mode, Seed: 42}, n, p, 8)
						parts, st, err := SortParallel(core.Config{P: p, Transport: tr}, Float64Codec{}, data, opt)
						if err != nil {
							t.Fatal(err)
						}
						if st.S() != 4 {
							t.Fatalf("S = %d, want 4", st.S())
						}
						checkSorted(t, parts)
						checkPermutation(t, data, parts)
						checkImbalance(t, n, p, opt.Oversample, parts)
					})
				}
			}
		}
	}
}

// TestSkewSuitePrime7: one larger prime p on the in-process transport,
// with an ℓ small enough that the sample machinery is stressed.
func TestSkewSuitePrime7(t *testing.T) {
	const n, p = 2100, 7
	for dname, gen := range distributions {
		t.Run(dname, func(t *testing.T) {
			data := gen(n)
			opt := Options{Oversample: 2}
			parts, _, err := SortParallel(core.Config{P: p, Transport: transport.ShmTransport{}}, Float64Codec{}, data, opt)
			if err != nil {
				t.Fatal(err)
			}
			checkSorted(t, parts)
			checkPermutation(t, data, parts)
			checkImbalance(t, n, p, 2, parts)
		})
	}
}

// TestSkewEdgePartitions: empty and n<p inputs on every transport —
// ranks with empty local runs contribute no samples, the splitter set
// may be empty or degenerate, and the routing walk must still be
// total.
func TestSkewEdgePartitions(t *testing.T) {
	for tname, tr := range skewTransports() {
		t.Run(tname, func(t *testing.T) {
			for _, data := range [][]float64{
				{},              // nothing anywhere
				{1},             // single element, p-1 empty ranks
				{3, 1, 2},       // n < p
				{2, 2, 2, 2},    // n == p, all equal
				{5, 4, 3, 2, 1}, // n barely above p, reversed
			} {
				for _, p := range []int{4, 5} {
					parts, _, err := SortParallel(core.Config{P: p, Transport: tr}, Float64Codec{}, data, Options{})
					if err != nil {
						t.Fatalf("p=%d %v: %v", p, data, err)
					}
					checkSorted(t, parts)
					checkPermutation(t, data, parts)
				}
			}
		})
	}
}

// TestSkewRecords: the byte-comparable record codec rides the same
// machine — skewed keys (every record shares a 2-byte prefix, many
// share all 10) still respect the bound and the ordering.
func TestSkewRecords(t *testing.T) {
	const n, p = 900, 5
	recs := RandomRecords(n, 3)
	for i := range recs {
		recs[i].Key[0] = 0xAB
		recs[i].Key[1] = 0xCD
		if i%4 != 0 {
			// Three quarters of the records collide completely.
			recs[i].Key = recs[0].Key
		}
	}
	opt := Resolve(Options{}, n, p, 16)
	parts, _, err := SortParallel(core.Config{P: p, Transport: transport.ShmTransport{}}, RecordCodec{}, recs, opt)
	if err != nil {
		t.Fatal(err)
	}
	cd := RecordCodec{}
	var prev *Record
	count := 0
	bound := ImbalanceBound(n, p, opt.Oversample)
	for q, part := range parts {
		if len(part) > bound {
			t.Fatalf("rank %d holds %d records, bound %d", q, len(part), bound)
		}
		for i := range part {
			if prev != nil && cd.Less(part[i], *prev) {
				t.Fatalf("rank %d record %d out of order", q, i)
			}
			prev = &part[i]
			count++
		}
	}
	if count != n {
		t.Fatalf("output has %d records, want %d", count, n)
	}
}
