package psort

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/transport"
)

func TestParallelSorts(t *testing.T) {
	data := RandomData(5000, 1)
	want := append([]float64(nil), data...)
	sort.Float64s(want)
	for _, p := range []int{1, 2, 3, 4, 8} {
		got, st, err := Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, data)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: length %d, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: element %d = %g, want %g", p, i, got[i], want[i])
			}
		}
		if st.S() != 4 {
			t.Errorf("p=%d: S = %d, want 4 (sample, condense, splitters, redistribute)", p, st.S())
		}
	}
}

func TestEdgeCases(t *testing.T) {
	cfg := core.Config{P: 4, Transport: transport.ShmTransport{}}
	for _, data := range [][]float64{
		{},
		{1},
		{2, 1},
		{5, 5, 5, 5, 5, 5, 5, 5}, // all equal: splitters coincide
		{3, 1, 2},                // fewer elements than processes
	} {
		got, _, err := Parallel(cfg, data)
		if err != nil {
			t.Fatalf("%v: %v", data, err)
		}
		if !sort.Float64sAreSorted(got) || len(got) != len(data) {
			t.Fatalf("%v -> %v", data, got)
		}
	}
}

func TestQuickSortsCorrectly(t *testing.T) {
	f := func(data []float64, pPick uint8) bool {
		p := int(pPick)%4 + 1
		got, _, err := Parallel(core.Config{P: p, Transport: transport.SimTransport{}}, data)
		if err != nil {
			return false
		}
		want := append([]float64(nil), data...)
		sort.Float64s(want)
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			// NaNs break ordering; quick can generate them. Compare
			// bitwise multisets via sorted equality, tolerating NaN at
			// matching positions.
			if got[i] != want[i] && !(got[i] != got[i] && want[i] != want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
