package psort

// Gated sort benchmarks (BENCH_sort.json, `make bench-gate`): the
// whole-machine p=4 shm sample sort on a uniform and on a Zipf-skewed
// key distribution. ns/op is per full 4-superstep sort of benchSortN
// elements; allocs/op is whole-machine and must stay flat (see
// alloc_test.go — the routed runs land in pooled per-pair batches and
// the merge reads zero-copy inbox views). The zipfian benchmark is also
// a property gate: every measured run must respect the deterministic
// (1+1/ℓ)·n/p imbalance bound, so a splitter-quality regression fails
// the benchmark itself, not just a separate test.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

const (
	benchSortN = 16384
	benchSortP = 4
)

func benchSort(b *testing.B, data []float64, gateBound bool) {
	b.Helper()
	opt := Resolve(Options{}, len(data), benchSortP, 8)
	cfg := core.Config{P: benchSortP, Transport: transport.ShmTransport{}}
	bound := ImbalanceBound(len(data), benchSortP, opt.Oversample)
	b.ReportAllocs()
	b.SetBytes(int64(8 * len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts, _, err := SortParallel(cfg, Float64Codec{}, data, opt)
		if err != nil {
			b.Fatal(err)
		}
		if gateBound {
			for q, part := range parts {
				if len(part) > bound {
					b.Fatalf("rank %d holds %d elements, imbalance bound (n=%d p=%d l=%d) is %d",
						q, len(part), len(data), benchSortP, opt.Oversample, bound)
				}
			}
		}
	}
}

func BenchmarkSampleSortUniform(b *testing.B) {
	benchSort(b, RandomData(benchSortN, 1996), false)
}

func BenchmarkSampleSortZipfian(b *testing.B) {
	benchSort(b, ZipfData(benchSortN, 1996), true)
}
