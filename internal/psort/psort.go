// Package psort implements BSP parallel sorting by oversampling-based
// sample sort — the kind of "fairly simple subroutine (i.e., broadcast
// or sorting)" for which §4 of the paper says the BSP cost model's
// curve-fitting works best. It is an extension experiment (DESIGN.md
// E1) with a fully predictable cost shape, following the oversampling
// design of Gerbessiotis & Siniolakis (PAPERS.md):
//
//	superstep 1: local sort, m = 2ℓp tagged samples to group leader
//	             (h ≤ ⌈√p⌉·m sample tuples at any leader)
//	superstep 2: ⌈p/⌈√p⌉⌉ leaders merge their group's runs and forward
//	             them to rank 0 (⌈√p⌉-bounded message fan-in at every
//	             rank — not the old p-message funnel)
//	superstep 3: rank 0 selects p−1 tagged splitters, broadcasts
//	             (h = p·(p−1) tuples)
//	superstep 4: all-to-all redistribution of the sorted runs
//	             (h ≤ (1+1/ℓ)·n/p elements per process)
//
// so S = 4, H is dominated by the n/p-element data exchange, and the
// oversampling ratio ℓ bounds any rank's final share at
// (1+1/ℓ)·n/p plus a small discretization term (ImbalanceBound) — even
// on all-equal or adversarially duplicated inputs, because samples and
// splitters carry (rank, index) origin tags that make every key
// distinct in the tagged order.
//
// The receive path never re-sorts: each routed run arrives sorted, and
// a k-way merge over the inbox's zero-copy frame views produces the
// final share directly.
package psort

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/cost"
)

// Mode selects the sampling strategy.
type Mode int

const (
	// ModeRegular takes m evenly spaced samples from each sorted local
	// run — fully deterministic, the PSRS/regular-sampling choice.
	ModeRegular Mode = iota
	// ModeRandom draws m positions uniformly at random (seeded per
	// rank, so recovery replays identically) — the randomized
	// oversampling variant of Gerbessiotis & Siniolakis.
	ModeRandom
)

// Options tune one sort run.
type Options struct {
	// Mode selects regular or randomized sampling.
	Mode Mode
	// Oversample is the oversampling ratio ℓ; each rank ships m = 2ℓp
	// samples. 0 selects DefaultRatio from Params.
	Oversample int
	// Params is the machine profile used to choose ℓ when Oversample
	// is 0; nil uses the SGI profile at the run's p.
	Params *cost.Params
	// Seed drives ModeRandom's per-rank sample positions.
	Seed int64
}

// Resolve fills in the derived fields of opt for a sort of n elements
// of elemBytes each over p ranks: the effective oversampling ratio ℓ.
// SortParallel applies it once globally so every rank samples at the
// same density; callers that need the effective ℓ (to evaluate
// ImbalanceBound) apply it themselves.
func Resolve(opt Options, n, p, elemBytes int) Options {
	if opt.Oversample <= 0 {
		pm := opt.Params
		if pm == nil {
			v := cost.SGI.Params(p)
			pm = &v
		}
		opt.Oversample = DefaultRatio(*pm, n, p, elemBytes)
	}
	return opt
}

// tagged is an element with its origin coordinates. The lexicographic
// order (element, rank, index) is a strict total order even when
// element keys collide, which is what keeps splitter selection and
// routing well-defined on duplicate-heavy inputs.
type tagged[T any] struct {
	v    T
	rank int32
	idx  int32
}

// lessTag compares in the tagged total order.
func lessTag[T any](cd Codec[T], a, b tagged[T]) bool {
	if cd.Less(a.v, b.v) {
		return true
	}
	if cd.Less(b.v, a.v) {
		return false
	}
	if a.rank != b.rank {
		return a.rank < b.rank
	}
	return a.idx < b.idx
}

// state is the whole per-rank state of the sample sort between any two
// supersteps: which boundary the rank has crossed, the resolved
// options, and its data. Everything else a stage needs (sample runs,
// condensed runs, splitters, routed elements) arrives in the inbox of
// the superstep that starts the stage, so a (stage, options, data)
// triple plus the undelivered inbox — exactly what a checkpoint
// captures — restarts the sort from any boundary.
type state[T any] struct {
	// stage is the number of superstep boundaries crossed: 0 = nothing
	// sent yet; 1 = sample runs sent (group leaders' inboxes hold
	// them); 2 = merged runs forwarded (rank 0's inbox holds them); 3 =
	// splitters broadcast (every inbox holds them); 4 = data routed
	// (every inbox holds this rank's final run set).
	stage int
	opt   Options
	data  []T
}

// sampleHdrLen prefixes each sample run and each routed run with the
// origin rank (uint32 LE).
const sampleHdrLen = 4

// tagLen is the encoded size of a (rank, idx) tag.
const tagLen = 8

// sampleCount is m, the per-rank sample count for ratio l on p ranks.
// The factor 2 over the nominal ℓ·p pays for the boundary slack of the
// partition bound — the p sample gaps straddling a bucket's edges add
// n/m elements on top of the n/p interior term — and absorbs
// ModeRandom's worst-case gap of two stratum widths, keeping the
// end-to-end bound at (1+1/ℓ)·n/p in both modes (see ImbalanceBound).
func sampleCount(l, p int) int {
	return 2 * l * p
}

// run executes the sort from the state's current stage. The stage
// counter is advanced *before* each Sync so that the Save hook — which
// fires inside Sync, after the barrier — captures the post-boundary
// position.
func (s *state[T]) run(c *core.Proc, cd Codec[T]) []T {
	p := c.P()
	me := int32(c.ID())
	esz := cd.Size()
	fanout := collect.GroupFanout(p)
	m := sampleCount(s.opt.Oversample, p)
	switch s.stage {
	case 0:
		// Superstep 1: local sort; ship the tagged sample run to this
		// rank's group leader (leaders ship to themselves — samples
		// must ride the transport, not rank-local memory, so that the
		// (stage, data, inbox) snapshot stays the complete state).
		sortLocal(cd, s.data)
		c.AddWork(nLogN(len(s.data)))
		if p > 1 {
			pos := samplePositions(len(s.data), m, s.opt, c.ID())
			buf := make([]byte, 0, sampleHdrLen+len(pos)*(esz+4))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(me))
			for _, i := range pos {
				buf = cd.Append(buf, s.data[i])
				buf = binary.LittleEndian.AppendUint32(buf, uint32(i))
			}
			c.Send(collect.GroupLeader(c.ID(), fanout), buf)
		}
		s.stage = 1
		c.Sync()
		fallthrough
	case 1:
		// Superstep 2: group leaders merge their members' sample runs
		// (no information is dropped — condensing at the leaders would
		// compress different groups at different ratios, skewing the
		// per-rank sample densities the selection bound depends on)
		// and forward one pre-merged tagged run to rank 0. Rank 0 thus
		// absorbs ⌈p/⌈√p⌉⌉ messages instead of p — every rank's
		// per-superstep message fan-in is bounded by ⌈√p⌉, which is
		// what removes the old rank-0 funnel; the sample *volume* at
		// the root is the price of the deterministic imbalance bound
		// and cannot be condensed away.
		if p > 1 && c.ID() == collect.GroupLeader(c.ID(), fanout) {
			all := s.recvTagged(c, cd, true)
			sortTagged(cd, all)
			c.AddWork(nLogN(len(all)))
			buf := make([]byte, 0, len(all)*(esz+tagLen))
			for _, t := range all {
				buf = cd.Append(buf, t.v)
				buf = binary.LittleEndian.AppendUint32(buf, uint32(t.rank))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(t.idx))
			}
			c.Send(0, buf)
		}
		s.stage = 2
		c.Sync()
		fallthrough
	case 2:
		// Superstep 3: rank 0 merges the forwarded sample runs, selects
		// p−1 tagged splitters at regular positions and broadcasts them.
		// The broadcast is p·(p−1) tiny tuples — the small term of the
		// cost shape; the sample volume never concentrates on one rank.
		if p > 1 && c.ID() == 0 {
			u := s.recvTagged(c, cd, false)
			sortTagged(cd, u)
			c.AddWork(nLogN(len(u)))
			buf := make([]byte, 0, 4+(p-1)*(esz+tagLen))
			nspl := 0
			if len(u) > 0 {
				nspl = p - 1
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(nspl))
			for j := 1; j <= nspl; j++ {
				t := u[j*len(u)/p]
				buf = cd.Append(buf, t.v)
				buf = binary.LittleEndian.AppendUint32(buf, uint32(t.rank))
				buf = binary.LittleEndian.AppendUint32(buf, uint32(t.idx))
			}
			for q := 0; q < p; q++ {
				c.Send(q, buf)
			}
		}
		s.stage = 3
		c.Sync()
		fallthrough
	case 3:
		// Superstep 4: cut the sorted local run at the splitters (a
		// single merge-walk — both sequences are sorted in the tagged
		// order) and route each contiguous piece. The run is encoded
		// once; each piece is appended behind a 4-byte origin header
		// into one reused scratch buffer, which Send copies straight
		// into the transport's pooled per-pair batch.
		if p > 1 {
			msg, ok := c.Recv()
			if !ok {
				panic("psort: missing splitter broadcast")
			}
			spl := decodeSplitters(cd, msg)
			cuts := cutRun(cd, s.data, me, spl, p)
			body := make([]byte, 0, len(s.data)*esz)
			for _, v := range s.data {
				body = cd.Append(body, v)
			}
			maxPiece := 0
			for q := 0; q < p; q++ {
				if n := cuts[q+1] - cuts[q]; n > maxPiece {
					maxPiece = n
				}
			}
			scratch := make([]byte, 0, sampleHdrLen+maxPiece*esz)
			for q := 0; q < p; q++ {
				lo, hi := cuts[q]*esz, cuts[q+1]*esz
				if lo == hi {
					continue
				}
				scratch = scratch[:0]
				scratch = binary.LittleEndian.AppendUint32(scratch, uint32(me))
				scratch = append(scratch, body[lo:hi]...)
				c.Send(q, scratch)
			}
			c.AddWork(len(s.data))
			// The routed elements now live in the exchange; they come
			// back through the inbox, so the local copy is no longer
			// part of the restartable state.
			s.data = nil
		}
		s.stage = 4
		c.Sync()
		fallthrough
	default:
		// Final (non-communicating) stage: k-way merge of the routed
		// runs. Each run is already sorted and the inbox frames are
		// zero-copy views, so this is the only pass over the data.
		if p == 1 {
			return s.data
		}
		return mergeRuns(c, cd)
	}
}

// sortLocal sorts data in the codec's order. Ties keep input order
// (stable), which matches the tagged order because local indices are
// assigned after the sort.
func sortLocal[T any](cd Codec[T], data []T) {
	sort.SliceStable(data, func(i, j int) bool { return cd.Less(data[i], data[j]) })
}

// sortTagged sorts tagged samples in the tagged total order.
func sortTagged[T any](cd Codec[T], ts []tagged[T]) {
	sort.Slice(ts, func(i, j int) bool { return lessTag(cd, ts[i], ts[j]) })
}

// samplePositions returns the sorted local indices to sample: evenly
// spaced (ModeRegular), or one uniform draw per stratum at twice the
// density (ModeRandom, seeded by (Seed, rank) so a recovery
// re-execution draws the same positions). Stratified jittering rather
// than sampling with replacement keeps the maximum gap between
// consecutive samples within twice the regular spacing, and the
// doubled density cancels that factor — so the deterministic
// ImbalanceBound survives the randomized mode (draws with replacement
// would only give it in expectation, and duplicate positions would
// collapse tagged splitters).
func samplePositions(n, m int, opt Options, rank int) []int {
	if n == 0 {
		return nil
	}
	if opt.Mode == ModeRandom {
		k := min(2*m, n)
		pos := make([]int, k)
		rng := rand.New(rand.NewSource(opt.Seed*0x9E3779B9 + int64(rank) + 1))
		for i := range pos {
			lo, hi := i*n/k, (i+1)*n/k
			pos[i] = lo + rng.Intn(hi-lo)
		}
		return pos
	}
	k := min(m, n)
	pos := make([]int, k)
	for i := range pos {
		pos[i] = i * n / k
	}
	return pos
}

// recvTagged drains the inbox into tagged samples. Sample runs
// (withHdr) carry one origin-rank header and per-sample indices;
// leader-forwarded runs carry full (rank, idx) tags per sample.
func (s *state[T]) recvTagged(c *core.Proc, cd Codec[T], withHdr bool) []tagged[T] {
	esz := cd.Size()
	var out []tagged[T]
	for {
		msg, ok := c.Recv()
		if !ok {
			return out
		}
		if withHdr {
			src := int32(binary.LittleEndian.Uint32(msg))
			body := msg[sampleHdrLen:]
			for len(body) >= esz+4 {
				v := cd.Decode(body)
				idx := int32(binary.LittleEndian.Uint32(body[esz:]))
				out = append(out, tagged[T]{v: v, rank: src, idx: idx})
				body = body[esz+4:]
			}
			continue
		}
		for len(msg) >= esz+tagLen {
			v := cd.Decode(msg)
			rank := int32(binary.LittleEndian.Uint32(msg[esz:]))
			idx := int32(binary.LittleEndian.Uint32(msg[esz+4:]))
			out = append(out, tagged[T]{v: v, rank: rank, idx: idx})
			msg = msg[esz+tagLen:]
		}
	}
}

// decodeSplitters parses a splitter broadcast: [u32 count] then count
// (element, rank, idx) triples in tagged order.
func decodeSplitters[T any](cd Codec[T], msg []byte) []tagged[T] {
	esz := cd.Size()
	n := int(binary.LittleEndian.Uint32(msg))
	msg = msg[4:]
	out := make([]tagged[T], 0, n)
	for i := 0; i < n; i++ {
		v := cd.Decode(msg)
		rank := int32(binary.LittleEndian.Uint32(msg[esz:]))
		idx := int32(binary.LittleEndian.Uint32(msg[esz+4:]))
		out = append(out, tagged[T]{v: v, rank: rank, idx: idx})
		msg = msg[esz+tagLen:]
	}
	return out
}

// cutRun returns the p+1 cut positions of the sorted local run against
// the tagged splitters: bucket q is data[cuts[q]:cuts[q+1]], the
// elements e with spl[q−1] ≤ e < spl[q] in the tagged order. Both
// sequences are sorted, so one monotone walk suffices; duplicate
// splitters simply yield empty middle buckets, and every element lands
// in exactly one bucket (routing totality).
func cutRun[T any](cd Codec[T], data []T, rank int32, spl []tagged[T], p int) []int {
	cuts := make([]int, p+1)
	i := 0
	for q := 1; q < p; q++ {
		if q-1 < len(spl) {
			for i < len(data) && lessTag(cd, tagged[T]{v: data[i], rank: rank, idx: int32(i)}, spl[q-1]) {
				i++
			}
		}
		cuts[q] = i
	}
	cuts[p] = len(data)
	return cuts
}

// mergeRun is one source's routed run during the final k-way merge.
type mergeRun[T any] struct {
	buf  []byte
	off  int
	head T
	src  int32
}

// mergeRuns drains the inbox's routed runs and k-way merges them with
// a binary heap ordered by (element, source rank) — a strict total
// order, because each source contributes at most one run, so the
// output is identical whatever order the transport delivered the
// batches in. The frame views are consumed in place (zero-copy); only
// the final share is allocated, sized by a header-only pre-pass.
func mergeRuns[T any](c *core.Proc, cd Codec[T]) []T {
	esz := cd.Size()
	var runs []mergeRun[T]
	total := 0
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		body := msg[sampleHdrLen:]
		if len(body) < esz {
			continue
		}
		runs = append(runs, mergeRun[T]{
			buf:  body,
			off:  esz,
			head: cd.Decode(body),
			src:  int32(binary.LittleEndian.Uint32(msg)),
		})
		total += len(body) / esz
	}
	out := make([]T, 0, total)
	less := func(a, b *mergeRun[T]) bool {
		if cd.Less(a.head, b.head) {
			return true
		}
		if cd.Less(b.head, a.head) {
			return false
		}
		return a.src < b.src
	}
	var down func(h []mergeRun[T], i int)
	down = func(h []mergeRun[T], i int) {
		for {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < len(h) && less(&h[l], &h[s]) {
				s = l
			}
			if r < len(h) && less(&h[r], &h[s]) {
				s = r
			}
			if s == i {
				return
			}
			h[i], h[s] = h[s], h[i]
			i = s
		}
	}
	for i := len(runs)/2 - 1; i >= 0; i-- {
		down(runs, i)
	}
	for len(runs) > 0 {
		r := &runs[0]
		out = append(out, r.head)
		if r.off+esz <= len(r.buf) {
			r.head = cd.Decode(r.buf[r.off:])
			r.off += esz
			down(runs, 0)
		} else {
			runs[0] = runs[len(runs)-1]
			runs = runs[:len(runs)-1]
			down(runs, 0)
		}
	}
	c.AddWork(nLogN(total))
	return out
}

// encode serializes the state for the checkpoint Save hook.
func (s *state[T]) encode(cd Codec[T]) []byte {
	b := make([]byte, 0, 40+cd.Size()*len(s.data))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.stage))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.opt.Mode))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.opt.Oversample))
	b = binary.LittleEndian.AppendUint64(b, uint64(s.opt.Seed))
	b = binary.LittleEndian.AppendUint64(b, uint64(len(s.data)))
	for _, v := range s.data {
		b = cd.Append(b, v)
	}
	return b
}

// decodeState is the Restore-side inverse of encode.
func decodeState[T any](cd Codec[T], b []byte) (*state[T], error) {
	if len(b) < 40 {
		return nil, fmt.Errorf("psort: snapshot state truncated: %d bytes", len(b))
	}
	s := &state[T]{
		stage: int(binary.LittleEndian.Uint64(b)),
		opt: Options{
			Mode:       Mode(binary.LittleEndian.Uint64(b[8:])),
			Oversample: int(binary.LittleEndian.Uint64(b[16:])),
			Seed:       int64(binary.LittleEndian.Uint64(b[24:])),
		},
	}
	n := int(binary.LittleEndian.Uint64(b[32:]))
	b = b[40:]
	if n < 0 || len(b) != n*cd.Size() {
		return nil, fmt.Errorf("psort: snapshot state inconsistent: %d values, %d bytes left", n, len(b))
	}
	s.data = make([]T, n)
	for i := range s.data {
		s.data[i] = cd.Decode(b[i*cd.Size():])
	}
	return s, nil
}

// nLogN is the comparison-count work unit of a local sort or merge.
func nLogN(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * max(lg, 1)
}

// Sort sorts this process's share inside an already-running BSP
// machine and returns its slice of the global order (process i's slice
// precedes process i+1's). It costs exactly 4 supersteps on every
// rank.
func Sort[T any](c *core.Proc, cd Codec[T], local []T, opt Options) []T {
	opt = Resolve(opt, len(local)*c.P(), c.P(), cd.Size())
	s := &state[T]{opt: opt, data: append([]T(nil), local...)}
	return s.run(c, cd)
}

// Run sorts this process's float64 share with default options.
func Run(c *core.Proc, local []float64) []float64 {
	return Sort(c, Float64Codec{}, local, Options{})
}

// chunk returns rank q's even share of data (a view, not a copy).
func chunk[T any](data []T, p, q int) []T {
	n := len(data)
	return data[q*n/p : (q+1)*n/p]
}

// SortParallel splits data evenly, sorts it on the configured BSP
// machine, and returns the per-rank shares of the global order plus
// run statistics. The options are resolved once against the global
// size, so every rank uses the same effective ℓ.
func SortParallel[T any](cfg core.Config, cd Codec[T], data []T, opt Options) ([][]T, *core.Stats, error) {
	opt = Resolve(opt, len(data), cfg.P, cd.Size())
	parts := make([][]T, cfg.P)
	st, err := core.Run(cfg, func(c *core.Proc) {
		s := &state[T]{opt: opt, data: append([]T(nil), chunk(data, cfg.P, c.ID())...)}
		parts[c.ID()] = s.run(c, cd)
	})
	if err != nil {
		return nil, nil, err
	}
	return parts, st, nil
}

// SortParallelRecoverable is SortParallel running under
// core.RunRecoverable with checkpoint hooks: each rank's Save
// serializes its (stage, options, data) state, Restore rebuilds it,
// and the undelivered inbox (sample runs, condensed runs, splitters or
// routed runs, depending on the boundary) rides in the snapshot
// itself. With cfg.Checkpoint unset this is exactly SortParallel.
func SortParallelRecoverable[T any](cfg core.Config, cd Codec[T], data []T, opt Options) ([][]T, *core.Stats, error) {
	opt = Resolve(opt, len(data), cfg.P, cd.Size())
	// states[q] is owned by rank q's goroutine: written by its Restore
	// hook or at fn entry, read by its Save hook (inside its own Sync).
	states := make([]*state[T], cfg.P)
	parts := make([][]T, cfg.P)
	hooks := core.Hooks{
		Save: func(c *core.Proc) ([]byte, bool) {
			return states[c.ID()].encode(cd), true
		},
		Restore: func(c *core.Proc, step int, snap []byte) error {
			s, err := decodeState(cd, snap)
			if err != nil {
				return err
			}
			states[c.ID()] = s
			return nil
		},
	}
	st, err := core.RunRecoverable(cfg, func(c *core.Proc) {
		if c.Step() == 0 {
			// Scratch start (first attempt, or a retry with no usable
			// snapshot): fresh state from the input chunk.
			states[c.ID()] = &state[T]{opt: opt, data: append([]T(nil), chunk(data, cfg.P, c.ID())...)}
		}
		parts[c.ID()] = states[c.ID()].run(c, cd)
	}, hooks)
	if err != nil {
		return nil, nil, err
	}
	return parts, st, nil
}

// Parallel splits data evenly, sorts it on the configured BSP machine,
// and returns the concatenated global order plus run statistics.
func Parallel(cfg core.Config, data []float64) ([]float64, *core.Stats, error) {
	parts, st, err := SortParallel(cfg, Float64Codec{}, data, Options{})
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, 0, len(data))
	for _, part := range parts {
		out = append(out, part...)
	}
	return out, st, nil
}

// ParallelRecoverable is Parallel under core.RunRecoverable; see
// SortParallelRecoverable.
func ParallelRecoverable(cfg core.Config, data []float64) ([]float64, *core.Stats, error) {
	parts, st, err := SortParallelRecoverable(cfg, Float64Codec{}, data, Options{})
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, 0, len(data))
	for _, part := range parts {
		out = append(out, part...)
	}
	return out, st, nil
}
