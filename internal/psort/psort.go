// Package psort implements BSP parallel sorting by regular sampling
// (PSRS) — the kind of "fairly simple subroutine (i.e., broadcast or
// sorting)" for which §4 of the paper says the BSP cost model's
// curve-fitting works best. It is an extension experiment (DESIGN.md E1)
// with a fully predictable cost shape:
//
//	superstep 1: local sort, regular samples to process 0   (h = p²)
//	superstep 2: splitter broadcast                          (h = p·(p−1))
//	superstep 3: all-to-all redistribution                   (h ≈ n/p per process)
//
// so S = 3 and H ≈ n/(2p) packet units for the data exchange.
package psort

import (
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/wire"
)

// Run sorts this process's share and returns its slice of the global
// order (process i's slice precedes process i+1's).
func Run(c *core.Proc, local []float64) []float64 {
	p := c.P()
	data := append([]float64(nil), local...)
	sort.Float64s(data)
	c.AddWork(nLogN(len(data)))
	if p == 1 {
		// Keep the three-superstep structure for cost comparability.
		c.Sync()
		c.Sync()
		c.Sync()
		return data
	}
	// Superstep 1: p regular samples to process 0.
	w := wire.NewWriter(8 * p)
	for k := 0; k < p; k++ {
		idx := k * len(data) / p
		if len(data) == 0 {
			w.Float64(0)
		} else {
			w.Float64(data[idx])
		}
	}
	c.Send(0, w.Bytes())
	c.Sync()
	// Superstep 2: process 0 selects and broadcasts p-1 splitters.
	if c.ID() == 0 {
		var samples []float64
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			r := wire.NewReader(msg)
			for r.Remaining() >= 8 {
				samples = append(samples, r.Float64())
			}
		}
		sort.Float64s(samples)
		w.Reset()
		for k := 1; k < p; k++ {
			w.Float64(samples[k*len(samples)/p])
		}
		for q := 0; q < p; q++ {
			c.Send(q, w.Bytes())
		}
	}
	c.Sync()
	msg, ok := c.Recv()
	if !ok {
		panic("psort: missing splitter broadcast")
	}
	r := wire.NewReader(msg)
	splitters := make([]float64, 0, p-1)
	for r.Remaining() >= 8 {
		splitters = append(splitters, r.Float64())
	}
	// Superstep 3: route each element to its bucket.
	outs := make([]*wire.Writer, p)
	for i := range outs {
		outs[i] = wire.NewWriter(0)
	}
	for _, v := range data {
		q := sort.SearchFloat64s(splitters, v)
		outs[q].Float64(v)
	}
	c.AddWork(len(data))
	for q := 0; q < p; q++ {
		if outs[q].Len() > 0 {
			c.Send(q, outs[q].Bytes())
		}
	}
	c.Sync()
	var mine []float64
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		rr := wire.NewReader(msg)
		for rr.Remaining() >= 8 {
			mine = append(mine, rr.Float64())
		}
	}
	sort.Float64s(mine)
	c.AddWork(nLogN(len(mine)))
	return mine
}

// nLogN is the comparison-count work unit of a local sort.
func nLogN(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * max(lg, 1)
}

// Parallel splits data evenly, sorts it on the configured BSP machine,
// and returns the concatenated global order plus run statistics.
func Parallel(cfg core.Config, data []float64) ([]float64, *core.Stats, error) {
	chunks := make([][]float64, cfg.P)
	n := len(data)
	for q := 0; q < cfg.P; q++ {
		chunks[q] = data[q*n/cfg.P : (q+1)*n/cfg.P]
	}
	results := make([][]float64, cfg.P)
	st, err := core.Run(cfg, func(c *core.Proc) {
		results[c.ID()] = Run(c, chunks[c.ID()])
	})
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, 0, n)
	for _, part := range results {
		out = append(out, part...)
	}
	return out, st, nil
}

// RandomData returns n deterministic pseudo-random values.
func RandomData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
