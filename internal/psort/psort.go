// Package psort implements BSP parallel sorting by regular sampling
// (PSRS) — the kind of "fairly simple subroutine (i.e., broadcast or
// sorting)" for which §4 of the paper says the BSP cost model's
// curve-fitting works best. It is an extension experiment (DESIGN.md E1)
// with a fully predictable cost shape:
//
//	superstep 1: local sort, regular samples to process 0   (h = p²)
//	superstep 2: splitter broadcast                          (h = p·(p−1))
//	superstep 3: all-to-all redistribution                   (h ≈ n/p per process)
//
// so S = 3 and H ≈ n/(2p) packet units for the data exchange.
package psort

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/wire"
)

// Run sorts this process's share and returns its slice of the global
// order (process i's slice precedes process i+1's).
func Run(c *core.Proc, local []float64) []float64 {
	return (&sortState{data: append([]float64(nil), local...)}).run(c)
}

// sortState is the whole per-rank state of the sample sort between any
// two supersteps: which boundary the rank has crossed and its data.
// Everything else a stage needs (samples, splitters, routed elements)
// arrives in the inbox of the superstep that starts the stage, so a
// (stage, data) pair plus the undelivered inbox — exactly what a
// checkpoint captures — restarts the sort from any boundary.
type sortState struct {
	// stage is the number of superstep boundaries crossed: 0 = nothing
	// sent yet; 1 = samples sent (rank 0's inbox holds them); 2 =
	// splitters broadcast (every inbox holds them); 3 = data routed
	// (every inbox holds this rank's final elements).
	stage int
	data  []float64
}

// run executes the sort from the state's current stage. The stage
// counter is advanced *before* each Sync so that the Save hook — which
// fires inside Sync, after the barrier — captures the post-boundary
// position.
func (s *sortState) run(c *core.Proc) []float64 {
	p := c.P()
	switch s.stage {
	case 0:
		// Superstep 1: local sort, p regular samples to process 0.
		sort.Float64s(s.data)
		c.AddWork(nLogN(len(s.data)))
		if p > 1 {
			w := wire.NewWriter(8 * p)
			for k := 0; k < p; k++ {
				idx := k * len(s.data) / p
				if len(s.data) == 0 {
					w.Float64(0)
				} else {
					w.Float64(s.data[idx])
				}
			}
			c.Send(0, w.Bytes())
		}
		s.stage = 1
		c.Sync()
		fallthrough
	case 1:
		// Superstep 2: process 0 selects and broadcasts p-1 splitters.
		if p > 1 && c.ID() == 0 {
			var samples []float64
			for {
				msg, ok := c.Recv()
				if !ok {
					break
				}
				r := wire.NewReader(msg)
				for r.Remaining() >= 8 {
					samples = append(samples, r.Float64())
				}
			}
			sort.Float64s(samples)
			w := wire.NewWriter(8 * (p - 1))
			for k := 1; k < p; k++ {
				w.Float64(samples[k*len(samples)/p])
			}
			for q := 0; q < p; q++ {
				c.Send(q, w.Bytes())
			}
		}
		s.stage = 2
		c.Sync()
		fallthrough
	case 2:
		// Superstep 3: route each element to its splitter bucket.
		if p > 1 {
			msg, ok := c.Recv()
			if !ok {
				panic("psort: missing splitter broadcast")
			}
			r := wire.NewReader(msg)
			splitters := make([]float64, 0, p-1)
			for r.Remaining() >= 8 {
				splitters = append(splitters, r.Float64())
			}
			outs := make([]*wire.Writer, p)
			for i := range outs {
				outs[i] = wire.NewWriter(0)
			}
			for _, v := range s.data {
				q := sort.SearchFloat64s(splitters, v)
				outs[q].Float64(v)
			}
			c.AddWork(len(s.data))
			for q := 0; q < p; q++ {
				if outs[q].Len() > 0 {
					c.Send(q, outs[q].Bytes())
				}
			}
			// The routed elements now live in the exchange; they come
			// back through the inbox, so the local copy is no longer
			// part of the restartable state.
			s.data = nil
		}
		s.stage = 3
		c.Sync()
		fallthrough
	default:
		if p == 1 {
			return s.data
		}
		var mine []float64
		for {
			msg, ok := c.Recv()
			if !ok {
				break
			}
			rr := wire.NewReader(msg)
			for rr.Remaining() >= 8 {
				mine = append(mine, rr.Float64())
			}
		}
		sort.Float64s(mine)
		c.AddWork(nLogN(len(mine)))
		return mine
	}
}

// encode serializes the state for the checkpoint Save hook.
func (s *sortState) encode() []byte {
	w := wire.NewWriter(16 + 8*len(s.data))
	w.Int(s.stage)
	w.Int(len(s.data))
	for _, v := range s.data {
		w.Float64(v)
	}
	return w.Bytes()
}

// decodeSortState is the Restore-side inverse of encode.
func decodeSortState(b []byte) (*sortState, error) {
	r := wire.NewReader(b)
	if r.Remaining() < 16 {
		return nil, fmt.Errorf("psort: snapshot state truncated: %d bytes", len(b))
	}
	s := &sortState{stage: r.Int()}
	n := r.Int()
	if n < 0 || r.Remaining() != 8*n {
		return nil, fmt.Errorf("psort: snapshot state inconsistent: %d values, %d bytes left", n, r.Remaining())
	}
	s.data = make([]float64, n)
	for i := range s.data {
		s.data[i] = r.Float64()
	}
	return s, nil
}

// nLogN is the comparison-count work unit of a local sort.
func nLogN(n int) int {
	lg := 0
	for v := n; v > 1; v >>= 1 {
		lg++
	}
	return n * max(lg, 1)
}

// Parallel splits data evenly, sorts it on the configured BSP machine,
// and returns the concatenated global order plus run statistics.
func Parallel(cfg core.Config, data []float64) ([]float64, *core.Stats, error) {
	chunks := make([][]float64, cfg.P)
	n := len(data)
	for q := 0; q < cfg.P; q++ {
		chunks[q] = data[q*n/cfg.P : (q+1)*n/cfg.P]
	}
	results := make([][]float64, cfg.P)
	st, err := core.Run(cfg, func(c *core.Proc) {
		results[c.ID()] = Run(c, chunks[c.ID()])
	})
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, 0, n)
	for _, part := range results {
		out = append(out, part...)
	}
	return out, st, nil
}

// ParallelRecoverable is Parallel running under core.RunRecoverable
// with checkpoint hooks: each rank's Save serializes its (stage, data)
// state, Restore rebuilds it, and the undelivered inbox (samples,
// splitters or routed elements, depending on the boundary) rides in
// the snapshot itself. With cfg.Checkpoint unset this is exactly
// Parallel.
func ParallelRecoverable(cfg core.Config, data []float64) ([]float64, *core.Stats, error) {
	chunks := make([][]float64, cfg.P)
	n := len(data)
	for q := 0; q < cfg.P; q++ {
		chunks[q] = data[q*n/cfg.P : (q+1)*n/cfg.P]
	}
	// states[q] is owned by rank q's goroutine: written by its Restore
	// hook or at fn entry, read by its Save hook (inside its own Sync).
	states := make([]*sortState, cfg.P)
	results := make([][]float64, cfg.P)
	hooks := core.Hooks{
		Save: func(c *core.Proc) ([]byte, bool) {
			return states[c.ID()].encode(), true
		},
		Restore: func(c *core.Proc, step int, state []byte) error {
			s, err := decodeSortState(state)
			if err != nil {
				return err
			}
			states[c.ID()] = s
			return nil
		},
	}
	st, err := core.RunRecoverable(cfg, func(c *core.Proc) {
		if c.Step() == 0 {
			// Scratch start (first attempt, or a retry with no usable
			// snapshot): fresh state from the input chunk.
			states[c.ID()] = &sortState{data: append([]float64(nil), chunks[c.ID()]...)}
		}
		results[c.ID()] = states[c.ID()].run(c)
	}, hooks)
	if err != nil {
		return nil, nil, err
	}
	out := make([]float64, 0, n)
	for _, part := range results {
		out = append(out, part...)
	}
	return out, st, nil
}

// RandomData returns n deterministic pseudo-random values.
func RandomData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
