package psort

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
)

// Codec describes one fixed-size element type to the sorter. The sort
// is generic over the element: anything with a fixed wire encoding and
// a strict weak ordering can ride the stage machine. Ties under Less
// are broken internally by origin (rank, index) tags, so Less does not
// have to be a total order on payloads — duplicate-heavy and all-equal
// inputs keep the deterministic imbalance bound.
type Codec[T any] interface {
	// Size is the fixed encoded size of one element in bytes.
	Size() int
	// Append appends the encoding of v to dst and returns the extended
	// slice.
	Append(dst []byte, v T) []byte
	// Decode reads one element from the first Size() bytes of b.
	Decode(b []byte) T
	// Less orders elements (strict weak ordering).
	Less(a, b T) bool
}

// Float64Codec sorts float64 values; 8 bytes each, half a BSP packet.
type Float64Codec struct{}

// Size implements Codec.
func (Float64Codec) Size() int { return 8 }

// Append implements Codec.
func (Float64Codec) Append(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// Decode implements Codec.
func (Float64Codec) Decode(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// Less implements Codec. NaNs order before every number (the
// sort.Float64s convention), which keeps the ordering a strict weak
// ordering even on inputs that contain them.
func (Float64Codec) Less(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// Record is a byte-comparable fixed-size element with a realistic
// payload: a 10-byte sort key and 6 bytes of opaque value — one
// 16-byte BSP packet per record, the classic sort-benchmark layout.
type Record struct {
	Key [10]byte
	Val [6]byte
}

// RecordCodec sorts Records by lexicographic key comparison.
type RecordCodec struct{}

// Size implements Codec.
func (RecordCodec) Size() int { return 16 }

// Append implements Codec.
func (RecordCodec) Append(dst []byte, r Record) []byte {
	dst = append(dst, r.Key[:]...)
	return append(dst, r.Val[:]...)
}

// Decode implements Codec.
func (RecordCodec) Decode(b []byte) Record {
	var r Record
	copy(r.Key[:], b[:10])
	copy(r.Val[:], b[10:16])
	return r
}

// Less implements Codec: lexicographic on the key bytes only; the
// value tags along.
func (RecordCodec) Less(a, b Record) bool {
	return bytes.Compare(a.Key[:], b.Key[:]) < 0
}

// RandomData returns n deterministic pseudo-random values.
func RandomData(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// ZipfData returns n deterministic Zipf-distributed values — the
// skewed, duplicate-heavy workload that breaks naive sample sorts: a
// handful of head values dominate, so splitters chosen without origin
// tags would funnel whole equal-runs onto one rank.
func ZipfData(n int, seed int64) []float64 {
	if n <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	imax := uint64(n / 8)
	if imax < 16 {
		imax = 16
	}
	z := rand.NewZipf(rng, 1.2, 1, imax)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(z.Uint64())
	}
	return out
}

// RandomRecords returns n deterministic records with pseudo-random
// keys.
func RandomRecords(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Record, n)
	for i := range out {
		rng.Read(out[i].Key[:])
		rng.Read(out[i].Val[:])
	}
	return out
}
