package psort

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/transport"
)

func TestDefaultRatio(t *testing.T) {
	sgi8 := cost.SGI.Params(8)
	if got := DefaultRatio(sgi8, 16000, 1, 8); got != 1 {
		t.Errorf("p=1 ratio = %d, want 1", got)
	}
	if got := DefaultRatio(sgi8, 0, 8, 8); got != 1 {
		t.Errorf("n=0 ratio = %d, want 1", got)
	}
	// ℓ grows with n (more imbalance to amortize) and shrinks with p
	// (the sample term costs ℓ·p per rank).
	if DefaultRatio(sgi8, 64000, 8, 8) <= DefaultRatio(sgi8, 4000, 8, 8) {
		t.Error("ratio not increasing in n")
	}
	if DefaultRatio(sgi8, 64000, 16, 8) >= DefaultRatio(sgi8, 64000, 4, 8) {
		t.Error("ratio not decreasing in p")
	}
	// A high-latency machine (Cenju: L/g ~ 600) hides sample traffic
	// under the superstep floor, so it affords a denser sample than the
	// low-latency SGI at the same size.
	if DefaultRatio(cost.Cenju.Params(8), 16000, 8, 8) < DefaultRatio(sgi8, 16000, 8, 8) {
		t.Error("high-L/g machine should afford at least the low-L/g ratio")
	}
	// Clamps: never below 1, never above maxRatio, and m = 2ℓp never
	// exceeds the local share.
	if got := DefaultRatio(cost.Params{G: 0.001, L: 1e9}, 1<<30, 2, 8); got > maxRatio {
		t.Errorf("ratio %d exceeds cap %d", got, maxRatio)
	}
	if got := DefaultRatio(sgi8, 100, 8, 8); got != 1 {
		t.Errorf("tiny input ratio = %d, want 1 (m must fit the local share)", got)
	}
}

func TestImbalanceBound(t *testing.T) {
	if got := ImbalanceBound(1000, 1, 4); got != 1000 {
		t.Errorf("p=1 bound = %d, want n", got)
	}
	// The bound is (1+1/ℓ)·n/p plus discretization: tighter with larger
	// ℓ, and always at least n/p.
	if ImbalanceBound(100000, 4, 32) >= ImbalanceBound(100000, 4, 2) {
		t.Error("bound should tighten as ℓ grows")
	}
	if ImbalanceBound(100000, 4, 8) < 100000/4 {
		t.Error("bound below the perfect share is impossible")
	}
}

func TestPredictShape(t *testing.T) {
	sh := PredictShape(16000, 4, 8, 8)
	if sh.S != 4 {
		t.Errorf("S = %d, want 4", sh.S)
	}
	if sh.RouteH <= sh.SampleH+sh.ForwardH+sh.SplitterH {
		t.Errorf("the data exchange must dominate the sample machinery: route=%d, rest=%d",
			sh.RouteH, sh.SampleH+sh.ForwardH+sh.SplitterH)
	}
	if sh.HLower <= 0 || sh.RouteH < sh.HLower {
		t.Errorf("predicted route h %d below the Bilardi lower bound %d", sh.RouteH, sh.HLower)
	}
	if sh.W <= 0 || sh.Bound <= 16000/4 {
		t.Errorf("implausible shape: %+v", sh)
	}
}

// TestMeasuredHWithinPredictedShape: a real run's per-superstep MaxH
// never exceeds the shape's per-superstep prediction, and total
// measured H sits at or above the Bilardi lower bound.
func TestMeasuredHWithinPredictedShape(t *testing.T) {
	const n, p = 16000, 4
	data := RandomData(n, 1996)
	opt := Resolve(Options{}, n, p, 8)
	_, st, err := SortParallel(core.Config{P: p, Transport: transport.ShmTransport{}}, Float64Codec{}, data, opt)
	if err != nil {
		t.Fatal(err)
	}
	sh := PredictShape(n, p, opt.Oversample, 8)
	pred := []int{sh.SampleH, sh.ForwardH, sh.SplitterH, sh.RouteH}
	for i, want := range pred {
		if got := st.Steps[i].MaxH; got > want {
			t.Errorf("superstep %d: measured h = %d exceeds predicted bound %d", i+1, got, want)
		}
	}
	if h := st.H(); h < sh.HLower {
		t.Errorf("measured H = %d below the lower bound %d — impossible unless accounting is broken", h, sh.HLower)
	}
}

func TestWriteCostReport(t *testing.T) {
	const n, p = 8000, 4
	data := ZipfData(n, 7)
	_, st, err := SortParallel(core.Config{P: p, Transport: transport.ShmTransport{}}, Float64Codec{}, data, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteCostReport(&b, "SGI", cost.SGI.Params(p), n, p, 8, Options{}, st)
	out := b.String()
	for _, want := range []string{
		"sample sort cost shape",
		"predicted S=4",
		"imbalance bound (1+1/l)*n/p",
		"Bilardi H lower bound",
		"measured H=",
		"measured: S=4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
