package psort

// Sort-specific allocation gate. The receive path appends routed runs
// straight into the transport's pooled per-pair batches and the final
// k-way merge consumes zero-copy inbox frame views, so the sort's
// allocation count must be (near-)independent of n: a handful of
// buffers per rank per stage, never one allocation per element or per
// message. The gate pins an absolute budget at a fixed size and — the
// stronger property — requires allocations to stay flat as n quadruples.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/transport"
)

const (
	sortAllocP = 4
	// sortAllocMax bounds a whole p=4 shm sort of 8192 float64s: machine
	// startup + 4 ranks × 4 stages of bounded scratch buffers measured
	// ~200 allocs; the gate leaves headroom for runtime noise while
	// staying orders of magnitude below one-alloc-per-element (8192) or
	// one-per-packet (~4096).
	sortAllocMax = 600
	// sortAllocGrowth caps allocs(4n)/allocs(n): a per-element or
	// per-packet allocation path would push this toward 4.
	sortAllocGrowth = 1.5
)

func measureSortAllocs(t *testing.T, n int) float64 {
	t.Helper()
	data := RandomData(n, 7)
	opt := Resolve(Options{}, n, sortAllocP, 8)
	cfg := core.Config{P: sortAllocP, Transport: transport.ShmTransport{}}
	run := func() {
		if _, _, err := SortParallel(cfg, Float64Codec{}, data, opt); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the transport pools before measuring
	return testing.AllocsPerRun(10, run)
}

func TestSortAllocBound(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate skipped in -short mode")
	}
	small := measureSortAllocs(t, 2048)
	large := measureSortAllocs(t, 8192)
	t.Logf("allocs per whole-machine sort (p=%d): n=2048: %.1f, n=8192: %.1f", sortAllocP, small, large)
	if large > sortAllocMax {
		t.Errorf("sort alloc gate: %.1f allocs at n=8192, want <= %d", large, sortAllocMax)
	}
	if large > small*sortAllocGrowth {
		t.Errorf("sort allocations grow with n: %.1f -> %.1f for 4x the elements (cap %.1fx) — a per-element or per-message allocation crept into the sort path",
			small, large, sortAllocGrowth)
	}
}
