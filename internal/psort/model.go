package psort

import (
	"fmt"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
)

// maxRatio caps the oversampling ratio: beyond this the splitter
// machinery stops being the cheap term of the cost shape.
const maxRatio = 128

// DefaultRatio chooses the oversampling ratio ℓ from the machine
// profile (g, L), following the tuning methodology of Gerbessiotis &
// Siniolakis: the two ℓ-dependent terms of the sort's cost are the
// sample traffic, which grows as g·2ℓp·pkt(elem), and the imbalance
// overhead of the data exchange, which shrinks as g·(n/ℓp)·pkt(elem);
// their crossing is ℓ* = √(n·elemBytes/16)/p. A high-latency machine
// affords denser sampling for free — the sample superstep already
// costs L, so ℓ is raised until its g·h term emerges from under the
// latency floor (L/g packets, spread over the ⌈√p⌉ runs a leader
// absorbs). The result is clamped so m = 2ℓp never exceeds the local
// share and the splitter machinery stays the small term.
func DefaultRatio(pm cost.Params, n, p, elemBytes int) int {
	if p <= 1 || n <= 0 {
		return 1
	}
	l := int(math.Round(math.Sqrt(float64(n*elemBytes)/16.0) / float64(p)))
	if pm.G > 0 {
		if cover := int(pm.L / (pm.G * float64(2*p))); cover > l {
			l = cover
		}
	}
	if hi := n / (2 * p * p); l > hi {
		l = hi
	}
	if l > maxRatio {
		l = maxRatio
	}
	if l < 1 {
		l = 1
	}
	return l
}

// ImbalanceBound is the deterministic per-rank output bound of the
// oversampling sort: no rank's final share exceeds
//
//	(1 + 1/ℓ)·n/p  +  2ℓp + 2p
//
// elements. The leading term is the classical regular-sampling bound:
// splitters sit at regular positions of the full p·m-sample multiset,
// so at most m samples fall strictly inside any bucket, and each
// sample stands for at most ⌈n/(p·m)⌉ elements of its origin rank —
// m·n/(p·m) = n/p interior elements. The p sample gaps straddling the
// bucket's two edges (one per rank) add up to p·n/(p·m) = n/(2ℓp) ≤
// (1/ℓ)·n/p more, which is what the factor 2 in m = 2ℓp pays for; the
// additive term is the per-gap discretization slack (one element per
// gap, at most 2ℓp + 2p gaps touch a bucket). ModeRandom samples one
// position per stratum at twice the density, so its worst-case gap of
// two stratum widths matches the regular spacing and the same bound
// holds deterministically. Origin tags make every key distinct in the
// tagged order, so the bound also holds for all-equal and
// adversarially duplicated inputs.
func ImbalanceBound(n, p, l int) int {
	if p <= 1 {
		return n
	}
	lead := float64(n) / float64(p) * (1 + 1/float64(l))
	return int(math.Ceil(lead)) + 2*l*p + 2*p
}

// Shape is the predicted cost shape of one sort run: the S, W and
// per-superstep H terms of Equation 1, in the units Stats report
// (work units, 16-byte packet units).
type Shape struct {
	// S is the superstep count (always 4 for p > 1).
	S int
	// W is the predicted work depth in comparison units: local sort,
	// leader merge, root merge, routing walk, final k-way merge.
	W int
	// SampleH, ForwardH, SplitterH, RouteH are the per-superstep
	// h-relations in packet units.
	SampleH, ForwardH, SplitterH, RouteH int
	// Bound is ImbalanceBound(n, p, ℓ) in elements.
	Bound int
	// HLower is the Bilardi et al. communication lower bound in packet
	// units (cost.SortHLowerBound).
	HLower int
}

// H is the predicted total h-relation in packet units.
func (s Shape) H() int { return s.SampleH + s.ForwardH + s.SplitterH + s.RouteH }

// pkts converts bytes to 16-byte packet units, rounding up.
func pkts(bytes int) int { return (bytes + 15) / 16 }

// PredictShape evaluates the sort's cost shape for n elements of
// elemBytes each over p ranks at oversampling ratio l.
func PredictShape(n, p, l, elemBytes int) Shape {
	if p <= 1 {
		return Shape{S: 4, W: nLogN(n), Bound: n}
	}
	m := sampleCount(l, p)
	fanout := int(math.Ceil(math.Sqrt(float64(p))))
	groups := (p + fanout - 1) / fanout
	sampleTuple := elemBytes + 4
	splTuple := elemBytes + tagLen
	bound := ImbalanceBound(n, p, l)
	sh := Shape{
		S: 4,
		// Leaders absorb ≤ fanout sample runs of m tuples each; packet
		// units round up per message, not over the concatenation.
		SampleH: fanout * pkts(sampleHdrLen+m*sampleTuple),
		// Rank 0 absorbs ≤ groups merged runs of ≤ fanout·m full tags
		// each — the sample volume is conserved (that resolution is what
		// the imbalance bound is made of) but arrives in ⌈√p⌉-bounded
		// messages.
		ForwardH: groups * pkts(fanout*m*splTuple),
		// The broadcast leaves rank 0 as p copies of p−1 tuples.
		SplitterH: p * pkts(4+(p-1)*splTuple),
		// The exchange is bounded per rank by the imbalance bound,
		// arriving as ≤ p runs with one header and one padding packet
		// each.
		RouteH: pkts(bound*elemBytes) + 2*p,
		Bound:  bound,
		HLower: cost.SortHLowerBound(n, p, elemBytes),
	}
	np := n / p
	sh.W = nLogN(np) + nLogN(fanout*m) + nLogN(p*m) + np + nLogN(bound)
	return sh
}

// WriteCostReport prints the sort's predicted cost shape next to a
// run's measured Stats: predicted W/H/S, the per-rank imbalance bound
// (1+1/ℓ)·n/p, and the Bilardi et al. H lower bound with the measured
// H's distance from it. st may be nil (prediction only).
func WriteCostReport(w io.Writer, name string, pm cost.Params, n, p, elemBytes int, opt Options, st *core.Stats) {
	opt = Resolve(opt, n, p, elemBytes)
	l := opt.Oversample
	sh := PredictShape(n, p, l, elemBytes)
	mode := "regular"
	if opt.Mode == ModeRandom {
		mode = "random"
	}
	fmt.Fprintf(w, "sample sort cost shape (n=%d p=%d elem=%dB, %s sampling, l=%d, m=2lp=%d samples/rank):\n",
		n, p, elemBytes, mode, l, sampleCount(l, p))
	fmt.Fprintf(w, "  predicted S=%d  W=%d units  H=%d pkts (samples %d + forward %d + splitters %d + route %d)\n",
		sh.S, sh.W, sh.H(), sh.SampleH, sh.ForwardH, sh.SplitterH, sh.RouteH)
	fmt.Fprintf(w, "  per-rank imbalance bound (1+1/l)*n/p = %d elements (n/p = %d, +%d discretization)\n",
		sh.Bound, n/max(p, 1), sh.Bound-int(math.Ceil(float64(n)/float64(max(p, 1))*(1+1/float64(l)))))
	fmt.Fprintf(w, "  predicted T on %s: %v (Equation 1 with W as comparison units)\n",
		name, pm.CommTime(sh.H(), sh.S))
	if sh.HLower > 0 {
		fmt.Fprintf(w, "  Bilardi H lower bound: %d pkts", sh.HLower)
		if st != nil {
			h := st.H()
			ratio := float64(h) / float64(sh.HLower)
			fmt.Fprintf(w, "; measured H=%d pkts (%.2fx of bound)", h, ratio)
		}
		fmt.Fprintln(w)
	}
	if st != nil {
		fmt.Fprintf(w, "  measured: S=%d W=%d units H=%d pkts\n", st.S(), st.WUnits(), st.H())
	}
}
