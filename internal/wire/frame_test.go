package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestFrameRoundTrip: AppendFrame/EncodeBatch followed by
// FrameCount/DecodeBatch/FrameIter recovers exactly the encoded message
// sequence, including empty messages and an empty batch.
func TestFrameRoundTrip(t *testing.T) {
	cases := [][][]byte{
		nil,
		{{}},
		{[]byte("a")},
		{[]byte("hello"), {}, []byte("world"), bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for ci, msgs := range cases {
		var batch []byte
		for _, m := range msgs {
			batch = AppendFrame(batch, m)
		}
		enc := EncodeBatch(nil, msgs)
		if !bytes.Equal(batch, enc) {
			t.Errorf("case %d: AppendFrame and EncodeBatch disagree", ci)
		}
		n, err := FrameCount(batch)
		if err != nil || n != len(msgs) {
			t.Errorf("case %d: FrameCount = %d, %v; want %d, nil", ci, n, err, len(msgs))
		}
		views, err := DecodeBatch(nil, batch)
		if err != nil || len(views) != len(msgs) {
			t.Fatalf("case %d: DecodeBatch = %d views, %v", ci, len(views), err)
		}
		var it FrameIter
		it.Reset(batch)
		for i, want := range msgs {
			if !bytes.Equal(views[i], want) {
				t.Errorf("case %d: view %d = %q, want %q", ci, i, views[i], want)
			}
			got, ok := it.Next()
			if !ok || !bytes.Equal(got, want) {
				t.Errorf("case %d: iter frame %d = %q ok=%v, want %q", ci, i, got, ok, want)
			}
		}
		if _, ok := it.Next(); ok {
			t.Errorf("case %d: iterator yields frames past the batch end", ci)
		}
	}
}

// TestFrameViewsCapped: decoded views must be three-index slices, so an
// append through a view cannot overwrite the next frame in the batch.
func TestFrameViewsCapped(t *testing.T) {
	batch := EncodeBatch(nil, [][]byte{[]byte("aa"), []byte("bb")})
	views, err := DecodeBatch(nil, batch)
	if err != nil {
		t.Fatal(err)
	}
	if cap(views[0]) != len(views[0]) {
		t.Fatalf("view cap %d > len %d: append could clobber the next frame", cap(views[0]), len(views[0]))
	}
	_ = append(views[0], 0xFF) // must reallocate, not scribble
	if string(views[1]) != "bb" {
		t.Fatalf("append through view corrupted sibling frame: %q", views[1])
	}
}

// TestFrameCorruptBatch: truncated headers, truncated payloads and
// absurd lengths are reported, never sliced out of range.
func TestFrameCorruptBatch(t *testing.T) {
	good := EncodeBatch(nil, [][]byte{[]byte("payload")})
	for _, tc := range []struct {
		name  string
		batch []byte
	}{
		{"short header", good[:2]},
		{"short payload", good[:len(good)-3]},
		{"huge length", binary.LittleEndian.AppendUint32(nil, MaxFramePayload+1)},
	} {
		if _, err := FrameCount(tc.batch); err == nil {
			t.Errorf("%s: FrameCount accepted a corrupt batch", tc.name)
		}
		if _, err := DecodeBatch(nil, tc.batch); err == nil {
			t.Errorf("%s: DecodeBatch accepted a corrupt batch", tc.name)
		}
	}
}

// FuzzFrameBatch feeds arbitrary bytes to the batch validator and
// decoder: they must agree with each other and never panic or slice out
// of range; any batch FrameCount accepts must decode into frames that
// re-encode to the identical bytes.
func FuzzFrameBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeBatch(nil, [][]byte{[]byte("seed"), {}, []byte("x")}))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, batch []byte) {
		n, cntErr := FrameCount(batch)
		views, decErr := DecodeBatch(nil, batch)
		if (cntErr == nil) != (decErr == nil) {
			t.Fatalf("FrameCount err=%v but DecodeBatch err=%v", cntErr, decErr)
		}
		if cntErr != nil {
			return
		}
		if len(views) != n {
			t.Fatalf("FrameCount = %d but DecodeBatch yielded %d views", n, len(views))
		}
		if re := EncodeBatch(nil, views); !bytes.Equal(re, batch) {
			t.Fatalf("re-encoding %d decoded frames does not reproduce the batch", n)
		}
	})
}
