package wire

import (
	"encoding/binary"
	"strings"
	"testing"
)

func TestHeartbeatRoundTrip(t *testing.T) {
	cases := []Heartbeat{
		{Rank: 0, Epoch: 0, Seq: 0},
		{Rank: 3, Epoch: 2, Seq: 41},
		{Rank: CoordinatorRank, Epoch: 7, Seq: 1 << 30},
	}
	for _, want := range cases {
		got, err := DecodeHeartbeatPayload(want.EncodePayload())
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

func TestHeartbeatDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeHeartbeatPayload(nil); err == nil {
		t.Fatal("empty payload: want error")
	}
	if _, err := DecodeHeartbeatPayload(make([]byte, heartbeatLen-1)); err == nil {
		t.Fatal("short payload: want error")
	}
	// A handshake payload has the wrong magic for a heartbeat.
	hs := Handshake{JobID: "", Rank: 1, Epoch: 0, P: 4}.EncodePayload()
	if _, err := DecodeHeartbeatPayload(hs); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("handshake payload as heartbeat: got %v, want magic error", err)
	}
	bad := Heartbeat{Rank: 1}.EncodePayload()
	binary.LittleEndian.PutUint32(bad[4:8], HandshakeVersion+1)
	if _, err := DecodeHeartbeatPayload(bad); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version: got %v, want version error", err)
	}
}
