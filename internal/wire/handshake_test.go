package wire

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

func TestHandshakeRoundTrip(t *testing.T) {
	cases := []Handshake{
		{},
		{JobID: "job-1", Rank: 0, Epoch: 0, P: 1},
		{JobID: "psort-e2e", Rank: 3, Epoch: 7, P: 4},
		{JobID: strings.Repeat("x", 100), Rank: 255, Epoch: 1 << 20, P: 1024},
	}
	for _, hs := range cases {
		var buf bytes.Buffer
		if err := WriteHandshake(&buf, hs); err != nil {
			t.Fatalf("WriteHandshake(%+v): %v", hs, err)
		}
		got, err := ReadHandshake(&buf)
		if err != nil {
			t.Fatalf("ReadHandshake(%+v): %v", hs, err)
		}
		if got != hs {
			t.Errorf("round trip: got %+v, want %+v", got, hs)
		}
	}
}

func TestHandshakeRejectsCorruption(t *testing.T) {
	good := Handshake{JobID: "j", Rank: 1, Epoch: 2, P: 4}.EncodePayload()

	short := good[:handshakeFixed-1]
	if _, err := DecodeHandshakePayload(short); err == nil {
		t.Error("short payload should fail")
	}

	badMagic := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(badMagic[0:], 0xDEADBEEF)
	if _, err := DecodeHandshakePayload(badMagic); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic should fail naming the magic, got %v", err)
	}

	badVersion := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(badVersion[4:], HandshakeVersion+1)
	if _, err := DecodeHandshakePayload(badVersion); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version should fail naming the version, got %v", err)
	}
}

func TestReadHandshakeBoundsFrame(t *testing.T) {
	// A frame claiming an absurd length must be rejected before any
	// allocation of that size.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<31)
	buf.Write(hdr[:])
	if _, err := ReadHandshake(&buf); err == nil {
		t.Error("oversized handshake frame should fail")
	}
}
