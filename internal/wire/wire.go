// Package wire provides compact little-endian encoding helpers for
// building and parsing BSP messages.
//
// The Green BSP library transmits raw bytes; "the data in the packet can
// be in any format, and it is up to the programmer to provide sufficient
// labeling information" (paper, Appendix A). Every application in this
// repository uses wire.Writer to build such labeled messages and
// wire.Reader to parse them.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer accumulates a message. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with capacity for n bytes.
func NewWriter(n int) *Writer { return &Writer{buf: make([]byte, 0, n)} }

// Bytes returns the encoded message. The slice is owned by the Writer
// until Reset is called.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards the contents but keeps the allocation.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint32 appends v.
func (w *Writer) Uint32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// Uint64 appends v.
func (w *Writer) Uint64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Int appends v as a 64-bit two's-complement value.
func (w *Writer) Int(v int) { w.Uint64(uint64(v)) }

// Int32 appends v as a 32-bit two's-complement value.
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Float64 appends the IEEE-754 bits of v.
func (w *Writer) Float64(v float64) { w.Uint64(math.Float64bits(v)) }

// Raw appends b verbatim.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Reader parses a message produced by Writer. Out-of-bounds reads panic;
// a BSP process that receives a malformed message cannot continue
// meaningfully, and the panic is surfaced as a run error by core.Run.
type Reader struct {
	buf []byte
	off int
}

// NewReader returns a Reader over b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Remaining reports how many unread bytes are left.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Uint32 consumes and returns the next 4 bytes.
func (r *Reader) Uint32() uint32 {
	r.need(4)
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Uint64 consumes and returns the next 8 bytes.
func (r *Reader) Uint64() uint64 {
	r.need(8)
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Int consumes a 64-bit value written by Writer.Int.
func (r *Reader) Int() int { return int(int64(r.Uint64())) }

// Int32 consumes a 32-bit value written by Writer.Int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Float64 consumes a value written by Writer.Float64.
func (r *Reader) Float64() float64 { return math.Float64frombits(r.Uint64()) }

// Raw consumes and returns the next n bytes without copying.
func (r *Reader) Raw(n int) []byte {
	r.need(n)
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *Reader) need(n int) {
	if r.off+n > len(r.buf) {
		panic(fmt.Sprintf("wire: short message: need %d bytes at offset %d of %d", n, r.off, len(r.buf)))
	}
}
