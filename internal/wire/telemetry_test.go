package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func sampleTelemetry(rank, epoch int, scale int64) Telemetry {
	return Telemetry{
		Rank:        rank,
		Epoch:       epoch,
		LastStep:    scale - 1,
		Steps:       scale,
		WorkNs:      scale * 1_000_003,
		WaitNs:      scale * 400_007,
		SentPkts:    scale * 129,
		RecvPkts:    scale * 131,
		PairBytes:   scale * 2048,
		HBRTTNs:     scale * 310_000,
		HBRTTCount:  scale / 2,
		CkptSaves:   scale / 3,
		Restores:    scale / 7,
		Rollbacks:   scale / 9,
		StepDur:     []int64{scale, scale * 2, 0, scale / 2},
		SyncWait:    []int64{0, scale, scale * 3},
		MetricsAddr: "127.0.0.1:9402",
	}
}

// equalTelemetry ignores nil-vs-empty slice differences, which the
// codec does not promise to preserve.
func equalTelemetry(a, b Telemetry) bool {
	norm := func(t *Telemetry) {
		if len(t.StepDur) == 0 {
			t.StepDur = nil
		}
		if len(t.SyncWait) == 0 {
			t.SyncWait = nil
		}
	}
	norm(&a)
	norm(&b)
	return reflect.DeepEqual(a, b)
}

// TestTelemetryRoundTrip: a monotone stream of snapshots must
// reconstruct exactly through the stateful delta codec, and the
// steady-state frames must be far smaller than the fixed-width
// equivalent.
func TestTelemetryRoundTrip(t *testing.T) {
	var enc TelemetryEncoder
	var dec TelemetryDecoder
	var buf []byte
	for i := int64(1); i <= 20; i++ {
		in := sampleTelemetry(3, 0, i*7)
		buf = enc.AppendEncode(buf[:0], &in)
		if in.Seq != uint32(i) {
			t.Fatalf("frame %d assigned seq %d", i, in.Seq)
		}
		out, err := dec.Decode(buf)
		if err != nil {
			t.Fatalf("decode frame %d: %v", i, err)
		}
		if !equalTelemetry(in, out) {
			t.Fatalf("frame %d round-trip mismatch:\n in %+v\nout %+v", i, in, out)
		}
		// Fixed-width encoding of the same frame would be 20 bytes of
		// header + 19 * 8-byte counters + the addr: > 180 bytes.
		if i > 1 && len(buf) > 100 {
			t.Errorf("steady-state delta frame is %d bytes, want compact (<100)", len(buf))
		}
	}
}

// TestTelemetryBaselineReset: a fresh encoder (warm-restarted member)
// emits Seq 1, which must reset the decoder's accumulated state even
// though the old incarnation's counters were much larger.
func TestTelemetryBaselineReset(t *testing.T) {
	var enc1 TelemetryEncoder
	var dec TelemetryDecoder
	for i := int64(1); i <= 5; i++ {
		in := sampleTelemetry(2, 0, i*100)
		if _, err := dec.Decode(enc1.AppendEncode(nil, &in)); err != nil {
			t.Fatalf("epoch-0 frame %d: %v", i, err)
		}
	}
	var enc2 TelemetryEncoder // fresh incarnation, small counters again
	in := sampleTelemetry(2, 1, 3)
	out, err := dec.Decode(enc2.AppendEncode(nil, &in))
	if err != nil {
		t.Fatalf("baseline after restart: %v", err)
	}
	if out.Seq != 1 || out.Epoch != 1 || !equalTelemetry(in, out) {
		t.Fatalf("baseline reset mismatch:\n in %+v\nout %+v", in, out)
	}
	// And the restarted stream keeps decoding.
	in2 := sampleTelemetry(2, 1, 9)
	out2, err := dec.Decode(enc2.AppendEncode(nil, &in2))
	if err != nil || !equalTelemetry(in2, out2) {
		t.Fatalf("post-reset delta frame: err=%v\n in %+v\nout %+v", err, in2, out2)
	}
}

// TestTelemetryGapDetection: dropping a delta frame must surface as
// ErrTelemetryGap, and the stream must recover at the next baseline.
func TestTelemetryGapDetection(t *testing.T) {
	var enc TelemetryEncoder
	var dec TelemetryDecoder
	t1 := sampleTelemetry(0, 0, 1)
	t2 := sampleTelemetry(0, 0, 2)
	t3 := sampleTelemetry(0, 0, 3)
	f1 := enc.AppendEncode(nil, &t1)
	_ = enc.AppendEncode(nil, &t2) // lost in transit
	f3 := enc.AppendEncode(nil, &t3)
	if _, err := dec.Decode(f1); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(f3); !errors.Is(err, ErrTelemetryGap) {
		t.Fatalf("decode after gap: err=%v, want ErrTelemetryGap", err)
	}
	var enc2 TelemetryEncoder
	t4 := sampleTelemetry(0, 1, 4)
	if out, err := dec.Decode(enc2.AppendEncode(nil, &t4)); err != nil || !equalTelemetry(t4, out) {
		t.Fatalf("baseline after gap: err=%v out=%+v", err, out)
	}
}

// TestTelemetryDeltaBeforeBaseline: a decoder that joins mid-stream
// (coordinator restart would need this) refuses delta frames until it
// sees a baseline.
func TestTelemetryDeltaBeforeBaseline(t *testing.T) {
	var enc TelemetryEncoder
	t1 := sampleTelemetry(1, 0, 1)
	t2 := sampleTelemetry(1, 0, 2)
	_ = enc.AppendEncode(nil, &t1)
	f2 := enc.AppendEncode(nil, &t2)
	var dec TelemetryDecoder
	if _, err := dec.Decode(f2); !errors.Is(err, ErrTelemetryBaseline) {
		t.Fatalf("err=%v, want ErrTelemetryBaseline", err)
	}
}

// TestTelemetryDecodeRejects: malformed frames must error, never
// panic or over-allocate.
func TestTelemetryDecodeRejects(t *testing.T) {
	var enc TelemetryEncoder
	tm := sampleTelemetry(0, 0, 5)
	good := enc.AppendEncode(nil, &tm)
	cases := map[string][]byte{
		"short":     good[:10],
		"bad magic": append([]byte{0, 0, 0, 0}, good[4:]...),
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte{}, good...), 0xff),
	}
	for name, b := range cases {
		var dec TelemetryDecoder
		if _, err := dec.Decode(b); err == nil {
			t.Errorf("%s: decode accepted malformed frame", name)
		}
	}
}

// TestTelemetryEncodeNoAlloc: the push loop runs concurrently with the
// superstep hot path, so steady-state encoding must not allocate.
func TestTelemetryEncodeNoAlloc(t *testing.T) {
	var enc TelemetryEncoder
	tm := sampleTelemetry(0, 0, 1)
	buf := enc.AppendEncode(make([]byte, 0, 512), &tm)
	n := int64(2)
	allocs := testing.AllocsPerRun(100, func() {
		tm = sampleTelemetry(0, 0, n)
		n++
		buf = enc.AppendEncode(buf[:0], &tm)
	})
	// sampleTelemetry itself allocates the two bucket slices; allow
	// those but nothing from the encoder.
	if allocs > 2 {
		t.Errorf("steady-state encode: %.1f allocs/op, want <= 2", allocs)
	}
}

// FuzzTelemetryFrame: the decoder must never panic on arbitrary
// payloads, and anything it accepts must survive a re-encode /
// re-decode round trip as a baseline frame.
func FuzzTelemetryFrame(f *testing.F) {
	var enc TelemetryEncoder
	t1 := sampleTelemetry(0, 0, 1)
	t2 := sampleTelemetry(0, 0, 4)
	f.Add(enc.AppendEncode(nil, &t1))
	f.Add(enc.AppendEncode(nil, &t2))
	var encNeg TelemetryEncoder
	neg := Telemetry{Rank: -1, Epoch: 3, LastStep: -1, WorkNs: -5}
	f.Add(encNeg.AppendEncode(nil, &neg))
	rng := rand.New(rand.NewSource(42))
	junk := make([]byte, 64)
	rng.Read(junk)
	f.Add(junk)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec TelemetryDecoder
		got, err := dec.Decode(data)
		if err != nil {
			return
		}
		var re TelemetryEncoder
		reframed := re.AppendEncode(nil, &got)
		var dec2 TelemetryDecoder
		got2, err := dec2.Decode(reframed)
		if err != nil {
			t.Fatalf("re-decode of accepted frame failed: %v", err)
		}
		got.Seq, got2.Seq = 0, 0 // re-encode restarts the sequence
		if !equalTelemetry(got, got2) {
			t.Fatalf("re-encode round trip diverged:\n got %+v\ngot2 %+v", got, got2)
		}
	})
}
