package wire

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Uint32(7)
	w.Uint64(1 << 40)
	w.Int(-12345)
	w.Int32(-7)
	w.Float64(3.5)
	w.Raw([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if got := r.Uint32(); got != 7 {
		t.Errorf("Uint32 = %d, want 7", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Errorf("Uint64 = %d, want 2^40", got)
	}
	if got := r.Int(); got != -12345 {
		t.Errorf("Int = %d, want -12345", got)
	}
	if got := r.Int32(); got != -7 {
		t.Errorf("Int32 = %d, want -7", got)
	}
	if got := r.Float64(); got != 3.5 {
		t.Errorf("Float64 = %g, want 3.5", got)
	}
	raw := r.Raw(3)
	if len(raw) != 3 || raw[0] != 1 || raw[2] != 3 {
		t.Errorf("Raw = %v, want [1 2 3]", raw)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(vals []int64) bool {
		w := NewWriter(len(vals) * 8)
		for _, v := range vals {
			w.Int(int(v))
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			if r.Int() != int(v) {
				return false
			}
		}
		return r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(vals []float64) bool {
		w := &Writer{}
		for _, v := range vals {
			w.Float64(v)
		}
		r := NewReader(w.Bytes())
		for _, v := range vals {
			got := r.Float64()
			if got != v && !(math.IsNaN(got) && math.IsNaN(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShortReadPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("reading past the end should panic")
		}
	}()
	r := NewReader([]byte{1, 2})
	r.Uint32()
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(8)
	w.Uint64(9)
	if w.Len() != 8 {
		t.Fatalf("Len = %d, want 8", w.Len())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len after Reset = %d, want 0", w.Len())
	}
	w.Uint32(3)
	if got := NewReader(w.Bytes()).Uint32(); got != 3 {
		t.Fatalf("after reset Uint32 = %d, want 3", got)
	}
}

func TestRawNoCopyAliases(t *testing.T) {
	b := []byte{1, 2, 3, 4}
	r := NewReader(b)
	got := r.Raw(4)
	b[0] = 9
	if got[0] != 9 {
		t.Fatal("Raw should alias the underlying buffer, not copy")
	}
}
