package wire

import (
	"encoding/binary"
	"fmt"
)

// Frame batching.
//
// The transports exchange one contiguous buffer per (src,dst) pair per
// superstep — the paper's message combining: the MPI version ships "a
// distinct input and output buffer ... for each of the other processes"
// whole, and the shared-memory version deposits packets into large
// per-writer blocks (Appendix B). A batch is a sequence of frames laid
// out back to back:
//
//	[u32 payload length][payload bytes] ...
//
// AppendFrame combines a message into a growing batch; EncodeBatch
// frames a whole message list in one call; DecodeBatch and FrameIter
// recover zero-copy payload views; FrameCount validates a received
// batch in a single pass before any view is handed out.

// frameHdrLen is the length prefix size of one frame.
const frameHdrLen = 4

// MaxFramePayload bounds a single frame's payload; it guards length
// prefixes read from untrusted bytes (a corrupt TCP stream).
const MaxFramePayload = 1 << 30

// AppendFrame appends one length-prefixed frame carrying msg to batch
// and returns the extended buffer. The msg bytes are copied; the caller
// keeps ownership of msg.
func AppendFrame(batch, msg []byte) []byte {
	batch = binary.LittleEndian.AppendUint32(batch, uint32(len(msg)))
	return append(batch, msg...)
}

// EncodeBatch frames every message of msgs into dst in one call and
// returns the extended buffer (the whole per-pair buffer encode).
func EncodeBatch(dst []byte, msgs [][]byte) []byte {
	n := 0
	for _, m := range msgs {
		n += frameHdrLen + len(m)
	}
	if cap(dst)-len(dst) < n {
		grown := make([]byte, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for _, m := range msgs {
		dst = AppendFrame(dst, m)
	}
	return dst
}

// FrameCount validates batch in one pass and returns the number of
// frames it holds. It is the only integrity check a receiver needs
// before iterating zero-copy views.
func FrameCount(batch []byte) (int, error) {
	frames := 0
	for off := 0; off < len(batch); {
		if len(batch)-off < frameHdrLen {
			return frames, fmt.Errorf("wire: truncated frame header at offset %d of %d", off, len(batch))
		}
		n := binary.LittleEndian.Uint32(batch[off:])
		if n > MaxFramePayload {
			return frames, fmt.Errorf("wire: corrupt frame length %d at offset %d", n, off)
		}
		off += frameHdrLen
		if len(batch)-off < int(n) {
			return frames, fmt.Errorf("wire: truncated frame payload: need %d bytes at offset %d of %d", n, off, len(batch))
		}
		off += int(n)
		frames++
	}
	return frames, nil
}

// PktBytes is the fixed packet size of the cost model's h-relation
// currency (core.PktSize; duplicated here so wire stays dependency-free).
const PktBytes = 16

// BatchStats validates batch in one pass and returns both its frame
// count and its size in packet units — ceil(payload/PktBytes) per
// frame, minimum one, matching core's h-relation accounting. It is the
// observability companion of FrameCount: the transports record both
// quantities on every per-pair batch handoff so a trace validator can
// reconcile pair totals against the superstep counters.
func BatchStats(batch []byte) (frames, pkts int, err error) {
	for off := 0; off < len(batch); {
		if len(batch)-off < frameHdrLen {
			return frames, pkts, fmt.Errorf("wire: truncated frame header at offset %d of %d", off, len(batch))
		}
		n := binary.LittleEndian.Uint32(batch[off:])
		if n > MaxFramePayload {
			return frames, pkts, fmt.Errorf("wire: corrupt frame length %d at offset %d", n, off)
		}
		off += frameHdrLen
		if len(batch)-off < int(n) {
			return frames, pkts, fmt.Errorf("wire: truncated frame payload: need %d bytes at offset %d of %d", n, off, len(batch))
		}
		off += int(n)
		frames++
		if n <= PktBytes {
			pkts++
		} else {
			pkts += (int(n) + PktBytes - 1) / PktBytes
		}
	}
	return frames, pkts, nil
}

// DecodeBatch appends a zero-copy view of every frame payload in batch
// to views and returns the extended slice (the whole per-pair buffer
// decode). The views alias batch and share its lifetime. batch must
// have been validated (FrameCount) or locally produced; a malformed
// batch returns an error with the views decoded so far.
func DecodeBatch(views [][]byte, batch []byte) ([][]byte, error) {
	for off := 0; off < len(batch); {
		view, next, err := frameAt(batch, off)
		if err != nil {
			return views, err
		}
		views = append(views, view)
		off = next
	}
	return views, nil
}

// frameAt returns the payload view of the frame starting at off and the
// offset of the following frame.
func frameAt(batch []byte, off int) ([]byte, int, error) {
	if len(batch)-off < frameHdrLen {
		return nil, off, fmt.Errorf("wire: truncated frame header at offset %d of %d", off, len(batch))
	}
	n := binary.LittleEndian.Uint32(batch[off:])
	if n > MaxFramePayload {
		return nil, off, fmt.Errorf("wire: corrupt frame length %d at offset %d", n, off)
	}
	start := off + frameHdrLen
	if len(batch)-start < int(n) {
		return nil, off, fmt.Errorf("wire: truncated frame payload: need %d bytes at offset %d of %d", n, start, len(batch))
	}
	return batch[start : start+int(n) : start+int(n)], start + int(n), nil
}

// FrameIter iterates the payload views of a validated batch. The zero
// value is an exhausted iterator; Reset arms it. Iteration is zero-copy:
// every view aliases the batch buffer.
type FrameIter struct {
	batch []byte
	off   int
}

// Reset arms the iterator over batch, which must have passed FrameCount
// (Next panics on corrupt framing, as a malformed batch at this layer
// is a transport bug, not recoverable input).
func (it *FrameIter) Reset(batch []byte) { it.batch, it.off = batch, 0 }

// Next returns the next payload view, or ok == false when the batch is
// exhausted.
func (it *FrameIter) Next() ([]byte, bool) {
	if it.off >= len(it.batch) {
		return nil, false
	}
	view, next, err := frameAt(it.batch, it.off)
	if err != nil {
		panic(err)
	}
	it.off = next
	return view, true
}
