package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzRoundTrip interprets the fuzz input as a script of typed writes,
// encodes them with Writer, and checks Reader returns every value
// bit-exactly with nothing left over. Seed corpus lives in
// testdata/fuzz/FuzzRoundTrip; run `go test -fuzz=FuzzRoundTrip
// ./internal/wire/` to explore further.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{4, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xF8, 0x7F}) // float64 NaN bits
	f.Add(bytes.Repeat([]byte{3, 0x80}, 40))                               // many negative int32s
	f.Add([]byte{5, 200, 0xAA, 0xBB, 1, 0xDE, 0xAD, 0xBE, 0xEF, 0xCA, 0xFE, 0xBA, 0xBE})

	f.Fuzz(func(t *testing.T, script []byte) {
		type op struct {
			kind byte
			u64  uint64
			raw  []byte
		}
		var ops []op
		w := &Writer{}
		take := func(n int) ([]byte, bool) {
			if len(script) < n {
				return nil, false
			}
			b := script[:n]
			script = script[n:]
			return b, true
		}
		for len(script) > 0 {
			kind := script[0] % 6
			script = script[1:]
			switch kind {
			case 0: // uint32
				b, ok := take(4)
				if !ok {
					b = append(b, make([]byte, 4-len(b))...)
				}
				v := uint64(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
				w.Uint32(uint32(v))
				ops = append(ops, op{kind: 0, u64: v})
			case 1: // uint64
				b, _ := take(8)
				var v uint64
				for i, x := range b {
					v |= uint64(x) << (8 * i)
				}
				w.Uint64(v)
				ops = append(ops, op{kind: 1, u64: v})
			case 2: // int
				b, _ := take(8)
				var v uint64
				for i, x := range b {
					v |= uint64(x) << (8 * i)
				}
				w.Int(int(int64(v)))
				ops = append(ops, op{kind: 2, u64: v})
			case 3: // int32
				b, ok := take(4)
				if !ok {
					b = append(b, make([]byte, 4-len(b))...)
				}
				v := uint64(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
				w.Int32(int32(uint32(v)))
				ops = append(ops, op{kind: 3, u64: v})
			case 4: // float64 (compared by bits: NaN payloads must survive)
				b, _ := take(8)
				var v uint64
				for i, x := range b {
					v |= uint64(x) << (8 * i)
				}
				w.Float64(math.Float64frombits(v))
				ops = append(ops, op{kind: 4, u64: v})
			case 5: // raw bytes, length from the script
				nb, ok := take(1)
				n := 0
				if ok {
					n = int(nb[0]) % 32
				}
				b, _ := take(n)
				w.Raw(b)
				ops = append(ops, op{kind: 5, raw: b})
			}
		}
		if w.Len() != len(w.Bytes()) {
			t.Fatalf("Len %d != len(Bytes) %d", w.Len(), len(w.Bytes()))
		}
		r := NewReader(w.Bytes())
		for i, o := range ops {
			switch o.kind {
			case 0:
				if got := r.Uint32(); uint64(got) != o.u64 {
					t.Fatalf("op %d: Uint32 = %d, want %d", i, got, o.u64)
				}
			case 1:
				if got := r.Uint64(); got != o.u64 {
					t.Fatalf("op %d: Uint64 = %d, want %d", i, got, o.u64)
				}
			case 2:
				if got := r.Int(); got != int(int64(o.u64)) {
					t.Fatalf("op %d: Int = %d, want %d", i, got, int(int64(o.u64)))
				}
			case 3:
				if got := r.Int32(); got != int32(uint32(o.u64)) {
					t.Fatalf("op %d: Int32 = %d, want %d", i, got, int32(uint32(o.u64)))
				}
			case 4:
				if got := math.Float64bits(r.Float64()); got != o.u64 {
					t.Fatalf("op %d: Float64 bits = %#x, want %#x", i, got, o.u64)
				}
			case 5:
				if got := r.Raw(len(o.raw)); !bytes.Equal(got, o.raw) {
					t.Fatalf("op %d: Raw = %v, want %v", i, got, o.raw)
				}
			}
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left after reading every value back", r.Remaining())
		}
	})
}

// FuzzReaderShortMessage feeds arbitrary bytes to Reader and checks the
// out-of-bounds contract: reads past the end always panic (via need),
// never return garbage silently, and in-bounds reads never panic.
func FuzzReaderShortMessage(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{1, 2, 3}, byte(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, byte(1))
	f.Fuzz(func(t *testing.T, buf []byte, kind byte) {
		r := NewReader(buf)
		need := 4
		if kind%2 == 1 {
			need = 8
		}
		defer func() {
			r := recover()
			if len(buf) < need && r == nil {
				t.Fatalf("reading %d bytes from %d succeeded", need, len(buf))
			}
			if len(buf) >= need && r != nil {
				t.Fatalf("in-bounds read panicked: %v", r)
			}
		}()
		if kind%2 == 1 {
			r.Uint64()
		} else {
			r.Uint32()
		}
	})
}
