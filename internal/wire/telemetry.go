package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Telemetry is the periodic per-rank metrics snapshot a cluster member
// pushes to the coordinator on the control plane (ctrl frame 'T').
// Every numeric field is cumulative since the start of the member's
// current incarnation, which lets the coordinator difference any two
// frames to get an interval and makes a lost frame harmless for
// totals. Frames are delta-encoded against the previous frame from the
// same incarnation: the control plane is ordered, reliable TCP, so the
// decoder can carry state, and a steady-state frame is a handful of
// near-zero zigzag varints instead of ~30 fixed-width counters.
//
// Seq starts at 1 for every incarnation. A Seq==1 frame is a baseline:
// it is encoded against an all-zero previous frame and resets the
// decoder, which is how a warm-restarted rank (fresh process, fresh
// counters) re-synchronises the stream without any out-of-band signal.
type Telemetry struct {
	Rank  int
	Epoch int
	Seq   uint32

	// LastStep is the newest global superstep this rank has completed
	// a barrier for, or -1 before the first barrier.
	LastStep int64

	// Superstep counters and Eq-1 terms, cumulative.
	Steps    int64
	WorkNs   int64
	WaitNs   int64
	SentPkts int64
	RecvPkts int64

	// PairBytes is the total payload bytes this rank has sent across
	// all destinations (the row-sum of the pair-batch matrix).
	PairBytes int64

	// Heartbeat round-trip accumulator (native ns sum + sample count),
	// so the aggregator can show a mean RTT per rank.
	HBRTTNs    int64
	HBRTTCount int64

	// Resilience counters.
	CkptSaves int64
	Restores  int64
	Rollbacks int64

	// Histogram bucket counts (cumulative, one entry per bucket
	// including the overflow bucket) for superstep duration and sync
	// wait, in the recorder's native bucket layout.
	StepDur  []int64
	SyncWait []int64

	// MetricsAddr is the bound address of this rank's own /metrics
	// endpoint ("" when none is served). Reported so the coordinator
	// can advertise real bound addresses instead of a port convention.
	MetricsAddr string
}

// TelemetryMagic identifies a telemetry frame payload ("TPSB" in
// little-endian byte order, next to "GPSB"/"HPSB" for handshakes and
// heartbeats).
const TelemetryMagic = 0x42535054

const (
	telemetryFixed      = 20  // magic, version, rank, epoch, seq
	telemetryMaxBuckets = 64  // sanity cap on histogram width
	telemetryMaxAddr    = 256 // sanity cap on the metrics address
)

// Telemetry stream errors. ErrTelemetryGap is the one the aggregator
// cares about: a delta frame whose Seq does not directly follow the
// previous frame, which on an ordered transport means frames were lost
// or reordered upstream of the codec.
var (
	ErrTelemetryGap      = errors.New("wire: telemetry sequence gap")
	ErrTelemetryBaseline = errors.New("wire: telemetry delta frame before baseline")
)

// TelemetryEncoder delta-encodes successive snapshots from one member
// incarnation. The zero value is ready to use; the first AppendEncode
// emits a baseline (Seq 1). The encoder owns its previous-frame state
// and reuses its backing storage, so steady-state encoding performs no
// allocations beyond growing dst.
type TelemetryEncoder struct {
	prev Telemetry
	seq  uint32
}

// Seq reports the sequence number of the last encoded frame (0 before
// the first).
func (e *TelemetryEncoder) Seq() uint32 { return e.seq }

// AppendEncode appends the encoded frame for t to dst and returns the
// extended slice. It assigns t.Seq from the encoder's counter.
func (e *TelemetryEncoder) AppendEncode(dst []byte, t *Telemetry) []byte {
	e.seq++
	t.Seq = e.seq

	var hdr [telemetryFixed]byte
	binary.LittleEndian.PutUint32(hdr[0:4], TelemetryMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], HandshakeVersion)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(int32(t.Rank)))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(int32(t.Epoch)))
	binary.LittleEndian.PutUint32(hdr[16:20], e.seq)
	dst = append(dst, hdr[:]...)

	p := &e.prev
	dst = binary.AppendVarint(dst, t.LastStep-p.LastStep)
	dst = binary.AppendVarint(dst, t.Steps-p.Steps)
	dst = binary.AppendVarint(dst, t.WorkNs-p.WorkNs)
	dst = binary.AppendVarint(dst, t.WaitNs-p.WaitNs)
	dst = binary.AppendVarint(dst, t.SentPkts-p.SentPkts)
	dst = binary.AppendVarint(dst, t.RecvPkts-p.RecvPkts)
	dst = binary.AppendVarint(dst, t.PairBytes-p.PairBytes)
	dst = binary.AppendVarint(dst, t.HBRTTNs-p.HBRTTNs)
	dst = binary.AppendVarint(dst, t.HBRTTCount-p.HBRTTCount)
	dst = binary.AppendVarint(dst, t.CkptSaves-p.CkptSaves)
	dst = binary.AppendVarint(dst, t.Restores-p.Restores)
	dst = binary.AppendVarint(dst, t.Rollbacks-p.Rollbacks)
	dst = appendBucketDeltas(dst, t.StepDur, p.StepDur)
	dst = appendBucketDeltas(dst, t.SyncWait, p.SyncWait)
	dst = binary.AppendUvarint(dst, uint64(len(t.MetricsAddr)))
	dst = append(dst, t.MetricsAddr...)

	e.prev.copyFrom(t)
	return dst
}

func appendBucketDeltas(dst []byte, cur, prev []int64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(cur)))
	for i, v := range cur {
		var pv int64
		if i < len(prev) {
			pv = prev[i]
		}
		dst = binary.AppendVarint(dst, v-pv)
	}
	return dst
}

// copyFrom deep-copies t into the receiver, reusing existing slice
// capacity so repeated encodes stay allocation-free.
func (p *Telemetry) copyFrom(t *Telemetry) {
	stepDur, syncWait := p.StepDur, p.SyncWait
	*p = *t
	p.StepDur = append(stepDur[:0], t.StepDur...)
	p.SyncWait = append(syncWait[:0], t.SyncWait...)
}

// TelemetryDecoder reconstructs cumulative snapshots from a delta
// stream. The zero value is ready; a baseline frame (Seq 1) resets it,
// so one decoder instance survives warm restarts of the sending rank.
type TelemetryDecoder struct {
	prev Telemetry
	have bool
}

// Decode parses one telemetry payload (without the ctrl tag byte) and
// returns the reconstructed cumulative snapshot. The returned value
// does not alias decoder state. A delta frame that does not directly
// follow the previous one fails with ErrTelemetryGap; decoder state is
// left unchanged on any error, so the stream recovers at the next
// baseline.
func (d *TelemetryDecoder) Decode(payload []byte) (Telemetry, error) {
	if len(payload) < telemetryFixed {
		return Telemetry{}, fmt.Errorf("wire: telemetry frame too short (%d bytes)", len(payload))
	}
	if m := binary.LittleEndian.Uint32(payload[0:4]); m != TelemetryMagic {
		return Telemetry{}, fmt.Errorf("wire: bad telemetry magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(payload[4:8]); v != HandshakeVersion {
		return Telemetry{}, fmt.Errorf("wire: telemetry version %d, want %d", v, HandshakeVersion)
	}
	t := Telemetry{
		Rank:  int(int32(binary.LittleEndian.Uint32(payload[8:12]))),
		Epoch: int(int32(binary.LittleEndian.Uint32(payload[12:16]))),
		Seq:   binary.LittleEndian.Uint32(payload[16:20]),
	}
	var base *Telemetry
	switch {
	case t.Seq == 1:
		base = &Telemetry{}
	case !d.have:
		return Telemetry{}, ErrTelemetryBaseline
	case t.Seq != d.prev.Seq+1:
		return Telemetry{}, fmt.Errorf("%w: got seq %d after %d", ErrTelemetryGap, t.Seq, d.prev.Seq)
	case t.Rank != d.prev.Rank:
		return Telemetry{}, fmt.Errorf("wire: telemetry rank changed %d -> %d without baseline", d.prev.Rank, t.Rank)
	default:
		base = &d.prev
	}

	b := payload[telemetryFixed:]
	fields := [...]*int64{
		&t.LastStep, &t.Steps, &t.WorkNs, &t.WaitNs, &t.SentPkts, &t.RecvPkts,
		&t.PairBytes, &t.HBRTTNs, &t.HBRTTCount, &t.CkptSaves, &t.Restores, &t.Rollbacks,
	}
	bases := [...]int64{
		base.LastStep, base.Steps, base.WorkNs, base.WaitNs, base.SentPkts, base.RecvPkts,
		base.PairBytes, base.HBRTTNs, base.HBRTTCount, base.CkptSaves, base.Restores, base.Rollbacks,
	}
	var err error
	for i, f := range fields {
		var dv int64
		if dv, b, err = takeVarint(b); err != nil {
			return Telemetry{}, err
		}
		*f = bases[i] + dv
	}
	if t.StepDur, b, err = takeBucketDeltas(b, base.StepDur); err != nil {
		return Telemetry{}, err
	}
	if t.SyncWait, b, err = takeBucketDeltas(b, base.SyncWait); err != nil {
		return Telemetry{}, err
	}
	n, b, err := takeUvarint(b)
	if err != nil {
		return Telemetry{}, err
	}
	if n > telemetryMaxAddr {
		return Telemetry{}, fmt.Errorf("wire: telemetry metrics addr %d bytes exceeds %d", n, telemetryMaxAddr)
	}
	if uint64(len(b)) < n {
		return Telemetry{}, fmt.Errorf("wire: telemetry frame truncated in metrics addr")
	}
	t.MetricsAddr = string(b[:n])
	b = b[n:]
	if len(b) != 0 {
		return Telemetry{}, fmt.Errorf("wire: %d trailing bytes after telemetry frame", len(b))
	}

	d.prev.copyFrom(&t)
	d.have = true
	return t, nil
}

func takeVarint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: telemetry frame truncated in varint")
	}
	return v, b[n:], nil
}

func takeUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("wire: telemetry frame truncated in uvarint")
	}
	return v, b[n:], nil
}

func takeBucketDeltas(b []byte, base []int64) ([]int64, []byte, error) {
	n, b, err := takeUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > telemetryMaxBuckets {
		return nil, nil, fmt.Errorf("wire: telemetry histogram %d buckets exceeds %d", n, telemetryMaxBuckets)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]int64, n)
	for i := range out {
		var dv int64
		if dv, b, err = takeVarint(b); err != nil {
			return nil, nil, err
		}
		if i < len(base) {
			dv += base[i]
		}
		out[i] = dv
	}
	return out, b, nil
}
