package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Handshake is the frame a cluster peer presents before any superstep
// traffic flows: it names the job, the peer's rank, the gang epoch and
// the expected machine width, so a connection from the wrong job, a
// stale (pre-recovery) gang generation, or a mis-sized machine is
// rejected before it can corrupt an exchange. The same frame travels on
// both planes — once to the coordinator when a rank joins, and once in
// each direction on every pairwise data connection — layered on the
// standard [u32 length][payload] wire framing used for batches.
type Handshake struct {
	// JobID names the job instance; both sides must agree.
	JobID string
	// Rank is the presenting peer's rank in [0, P).
	Rank int
	// Epoch is the gang generation: it starts at the job's initial
	// epoch and is bumped by the launcher on every recovery relaunch,
	// fencing off processes from a previous (crashed) generation.
	Epoch int
	// P is the machine width the peer was started with.
	P int
}

// HandshakeMagic brands the first word of every handshake payload, so a
// stray connection from something that is not a BSP cluster peer fails
// loudly instead of being misread as rank/epoch fields.
const HandshakeMagic = 0x42535047 // "GPSB" little-endian on the wire

// HandshakeVersion is the protocol revision this build speaks.
const HandshakeVersion = 1

// handshakeFixed is the fixed-width prefix of the payload: magic,
// version, rank, epoch, p — five little-endian uint32s. The job id
// occupies the remainder of the payload.
const handshakeFixed = 20

// handshakeMaxLen bounds a handshake frame, guarding ReadHandshake
// against corrupt or hostile length prefixes.
const handshakeMaxLen = 4096

// EncodePayload renders the handshake as a frame payload (without the
// length prefix).
func (h Handshake) EncodePayload() []byte {
	b := make([]byte, handshakeFixed, handshakeFixed+len(h.JobID))
	binary.LittleEndian.PutUint32(b[0:4], HandshakeMagic)
	binary.LittleEndian.PutUint32(b[4:8], HandshakeVersion)
	binary.LittleEndian.PutUint32(b[8:12], uint32(h.Rank))
	binary.LittleEndian.PutUint32(b[12:16], uint32(h.Epoch))
	binary.LittleEndian.PutUint32(b[16:20], uint32(h.P))
	return append(b, h.JobID...)
}

// DecodeHandshakePayload parses a frame payload produced by
// EncodePayload, validating the magic and version.
func DecodeHandshakePayload(b []byte) (Handshake, error) {
	if len(b) < handshakeFixed {
		return Handshake{}, fmt.Errorf("wire: handshake payload of %d bytes, want >= %d", len(b), handshakeFixed)
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != HandshakeMagic {
		return Handshake{}, fmt.Errorf("wire: bad handshake magic %#08x (not a BSP cluster peer?)", m)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != HandshakeVersion {
		return Handshake{}, fmt.Errorf("wire: handshake version %d, this build speaks %d", v, HandshakeVersion)
	}
	return Handshake{
		Rank:  int(binary.LittleEndian.Uint32(b[8:12])),
		Epoch: int(binary.LittleEndian.Uint32(b[12:16])),
		P:     int(binary.LittleEndian.Uint32(b[16:20])),
		JobID: string(b[handshakeFixed:]),
	}, nil
}

// WriteHandshake sends the handshake as one length-prefixed frame.
func WriteHandshake(w io.Writer, h Handshake) error {
	payload := h.EncodePayload()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadHandshake reads one length-prefixed handshake frame. The length
// is bounded by handshakeMaxLen so a peer speaking a different protocol
// cannot make the reader allocate or block on an absurd frame.
func ReadHandshake(r io.Reader) (Handshake, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Handshake{}, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > handshakeMaxLen {
		return Handshake{}, fmt.Errorf("wire: handshake frame of %d bytes exceeds limit %d", n, handshakeMaxLen)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Handshake{}, err
	}
	return DecodeHandshakePayload(payload)
}
