package wire

import (
	"encoding/binary"
	"fmt"
)

// Heartbeat is the liveness frame exchanged on the cluster control
// plane: members beat to the coordinator on a fixed interval and the
// coordinator beats back, so a hung-but-connected process — one whose
// TCP socket stays open while its goroutines are stuck — is detected
// by the absence of beats instead of waiting for the sync watchdog.
// The epoch fences beats exactly like the handshake fences joins: a
// beat from a previous gang generation is ignored, never counted as
// liveness for the current one.
type Heartbeat struct {
	// Rank is the beating member's rank, or CoordinatorRank for beats
	// the coordinator sends to members.
	Rank int
	// Epoch is the gang generation the sender believes is current.
	Epoch int
	// Seq increments per beat from one sender; gaps tell the receiver
	// how many beats a slow link swallowed.
	Seq uint32
}

// CoordinatorRank is the Rank a coordinator presents in its own beats;
// it can never collide with a member rank (those live in [0, P)).
const CoordinatorRank = -1

// HeartbeatMagic brands heartbeat payloads, distinct from
// HandshakeMagic so a misrouted frame fails loudly as the wrong kind.
const HeartbeatMagic = 0x42535048 // "HPSB" little-endian on the wire

// heartbeatLen is the exact payload size: magic, version, rank, epoch,
// seq — five little-endian uint32s.
const heartbeatLen = 20

// EncodePayload renders the heartbeat as a frame payload (without the
// length prefix). Rank is encoded as a two's-complement uint32 so
// CoordinatorRank survives the round trip.
func (h Heartbeat) EncodePayload() []byte {
	b := make([]byte, heartbeatLen)
	binary.LittleEndian.PutUint32(b[0:4], HeartbeatMagic)
	binary.LittleEndian.PutUint32(b[4:8], HandshakeVersion)
	binary.LittleEndian.PutUint32(b[8:12], uint32(int32(h.Rank)))
	binary.LittleEndian.PutUint32(b[12:16], uint32(h.Epoch))
	binary.LittleEndian.PutUint32(b[16:20], h.Seq)
	return b
}

// DecodeHeartbeatPayload parses a frame payload produced by
// EncodePayload, validating the magic and version.
func DecodeHeartbeatPayload(b []byte) (Heartbeat, error) {
	if len(b) != heartbeatLen {
		return Heartbeat{}, fmt.Errorf("wire: heartbeat payload of %d bytes, want %d", len(b), heartbeatLen)
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != HeartbeatMagic {
		return Heartbeat{}, fmt.Errorf("wire: bad heartbeat magic %#08x", m)
	}
	if v := binary.LittleEndian.Uint32(b[4:8]); v != HandshakeVersion {
		return Heartbeat{}, fmt.Errorf("wire: heartbeat version %d, this build speaks %d", v, HandshakeVersion)
	}
	return Heartbeat{
		Rank:  int(int32(binary.LittleEndian.Uint32(b[8:12]))),
		Epoch: int(binary.LittleEndian.Uint32(b[12:16])),
		Seq:   binary.LittleEndian.Uint32(b[16:20]),
	}, nil
}
