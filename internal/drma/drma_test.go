package drma

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/matmult"
	"repro/internal/transport"
)

func run(t *testing.T, p int, fn func(x *Ctx)) *core.Stats {
	t.Helper()
	st, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, func(c *core.Proc) {
		fn(New(c))
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPutBasic(t *testing.T) {
	const p = 4
	run(t, p, func(x *Ctx) {
		c := x.Proc()
		buf := make([]byte, p)
		a := x.Register(buf)
		// Everyone writes its rank into slot ID of every process.
		for dst := 0; dst < p; dst++ {
			x.Put(dst, a, c.ID(), []byte{byte(c.ID() + 1)})
		}
		x.Sync()
		for i := 0; i < p; i++ {
			if buf[i] != byte(i+1) {
				t.Errorf("proc %d: buf[%d] = %d, want %d", c.ID(), i, buf[i], i+1)
			}
		}
	})
}

func TestGetBasic(t *testing.T) {
	const p = 4
	run(t, p, func(x *Ctx) {
		c := x.Proc()
		local := []byte{byte(10 + c.ID()), byte(20 + c.ID())}
		a := x.Register(local)
		got := make([]byte, 2)
		src := (c.ID() + 1) % p
		x.Get(src, a, 0, got)
		x.Sync()
		want := []byte{byte(10 + src), byte(20 + src)}
		if !bytes.Equal(got, want) {
			t.Errorf("proc %d: got %v, want %v", c.ID(), got, want)
		}
	})
}

func TestGetSeesPrePutValues(t *testing.T) {
	// BSP DRMA: a get in the same superstep as a put to the same
	// location observes the value before the put lands.
	run(t, 2, func(x *Ctx) {
		c := x.Proc()
		buf := []byte{byte(100 + c.ID())}
		a := x.Register(buf)
		got := make([]byte, 1)
		other := 1 - c.ID()
		x.Get(other, a, 0, got)
		x.Put(other, a, 0, []byte{200})
		x.Sync()
		if got[0] != byte(100+other) {
			t.Errorf("proc %d: get saw %d, want pre-put %d", c.ID(), got[0], 100+other)
		}
		if buf[0] != 200 {
			t.Errorf("proc %d: put not applied: %d", c.ID(), buf[0])
		}
	})
}

func TestSelfPutGet(t *testing.T) {
	run(t, 2, func(x *Ctx) {
		c := x.Proc()
		buf := make([]byte, 4)
		a := x.Register(buf)
		x.Put(c.ID(), a, 1, []byte{7, 8})
		got := make([]byte, 4)
		x.Get(c.ID(), a, 0, got)
		x.Sync()
		if buf[1] != 7 || buf[2] != 8 {
			t.Errorf("self put failed: %v", buf)
		}
		if got[1] != 0 {
			t.Errorf("self get should see pre-put zeros, got %v", got)
		}
	})
}

func TestMultipleAreas(t *testing.T) {
	run(t, 3, func(x *Ctx) {
		c := x.Proc()
		a1buf := make([]byte, 3)
		a2buf := make([]byte, 3)
		a1 := x.Register(a1buf)
		a2 := x.Register(a2buf)
		next := (c.ID() + 1) % 3
		x.Put(next, a1, 0, []byte{1})
		x.Put(next, a2, 0, []byte{2})
		x.Sync()
		if a1buf[0] != 1 || a2buf[0] != 2 {
			t.Errorf("proc %d: areas mixed up: %v %v", c.ID(), a1buf, a2buf)
		}
	})
}

func TestSyncCostsTwoSupersteps(t *testing.T) {
	st := run(t, 4, func(x *Ctx) {
		buf := make([]byte, 8)
		a := x.Register(buf)
		x.Put(0, a, 0, []byte{1})
		x.Sync()
		x.Sync()
	})
	if st.S() != 4 {
		t.Errorf("S = %d, want 4 (2 per DRMA sync)", st.S())
	}
}

func TestOutOfBoundsPutFailsRun(t *testing.T) {
	_, err := core.Run(core.Config{P: 2, Transport: transport.SimTransport{}}, func(c *core.Proc) {
		x := New(c)
		a := x.Register(make([]byte, 4))
		x.Put(1-c.ID(), a, 3, []byte{1, 2, 3})
		x.Sync()
	})
	if err == nil {
		t.Fatal("out-of-bounds put should abort the run")
	}
}

// TestMatmultOverDRMA rewrites Cannon's shift as gets — the "static
// scientific computation" style §1.3 attributes to the Oxford library.
func TestMatmultOverDRMA(t *testing.T) {
	const n, p = 12, 4
	sq := 2
	bn := n / sq
	a := matmult.RandomMatrix(n, 1)
	b := matmult.RandomMatrix(n, 2)
	aBlks, bBlks, err := matmult.Distribute(a, b, n, p)
	if err != nil {
		t.Fatal(err)
	}
	want := matmult.Naive(a, b, n)
	cBlks := make([][]float64, p)
	run(t, p, func(x *Ctx) {
		c := x.Proc()
		id := c.ID()
		xg, yg := id/sq, id%sq
		// Registered areas hold this process's current A and B blocks.
		aBuf := make([]byte, 8*bn*bn)
		bBuf := make([]byte, 8*bn*bn)
		storeBlock(aBuf, aBlks[id])
		storeBlock(bBuf, bBlks[id])
		areaA := x.Register(aBuf)
		areaB := x.Register(bBuf)
		out := make([]float64, bn*bn)
		for step := 0; step < sq; step++ {
			matmult.MultiplyAdd(out, loadBlock(aBuf, bn), loadBlock(bBuf, bn), bn)
			if step == sq-1 {
				break
			}
			// Fetch the next blocks from the right/below neighbors
			// (gets observe the pre-put state, so fetch-then-store
			// within one DRMA superstep is race-free).
			right := xg*sq + (yg+1)%sq
			below := ((xg+1)%sq)*sq + yg
			nextA := make([]byte, len(aBuf))
			nextB := make([]byte, len(bBuf))
			x.Get(right, areaA, 0, nextA)
			x.Get(below, areaB, 0, nextB)
			x.Sync()
			copy(aBuf, nextA)
			copy(bBuf, nextB)
			x.Sync() // publish the new blocks before the next fetch
		}
		cBlks[id] = out
	})
	got := matmult.Assemble(cBlks, n, p)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("C[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func storeBlock(buf []byte, blk []float64) {
	for i, v := range blk {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
}

func loadBlock(buf []byte, bn int) []float64 {
	out := make([]float64, bn*bn)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return out
}

// TestQuickRandomPuts: random non-overlapping puts land exactly.
func TestQuickRandomPuts(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed int64) bool {
		const p, slots = 3, 16
		rng := rand.New(rand.NewSource(seed))
		// plan[dst][slot] = writer rank (each slot written once).
		plan := make([][]int, p)
		for d := range plan {
			plan[d] = make([]int, slots)
			for s := range plan[d] {
				plan[d][s] = rng.Intn(p)
			}
		}
		ok := true
		_, err := core.Run(core.Config{P: p, Transport: transport.SimTransport{}}, func(c *core.Proc) {
			x := New(c)
			buf := make([]byte, slots)
			a := x.Register(buf)
			for d := 0; d < p; d++ {
				for s := 0; s < slots; s++ {
					if plan[d][s] == c.ID() {
						x.Put(d, a, s, []byte{byte(10*c.ID() + s%10)})
					}
				}
			}
			x.Sync()
			for s := 0; s < slots; s++ {
				want := byte(10*plan[c.ID()][s] + s%10)
				if buf[s] != want {
					ok = false
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
