// Package drma provides direct remote memory access in the style of the
// Oxford BSP library, built entirely on the Green BSP message-passing
// primitives.
//
// The paper contrasts the two designs (§1.3): "The Oxford BSP library,
// developed by Miller..., allows a processor to directly access the
// memory of another processor... it is well suited for many static
// computations that arise in scientific computing. In contrast, the
// Green BSP library is based on message passing, which requires the
// programmer to prepare and read messages." This package implements the
// Oxford interface on top of the Green one, demonstrating the layering
// the BSP model prescribes: richer operations are "implemented on top of
// these functions".
//
// Semantics follow the classic BSP DRMA rules:
//
//   - Register is collective: every process registers its areas in the
//     same order, and same-order areas are associated across processes.
//   - Put transfers local data into a remote area; the write takes
//     effect at the end of the superstep (the source buffer is copied
//     at call time, like bsp_put).
//   - Get reads a remote area as it is at the end of the superstep,
//     before any puts of the same superstep are applied.
//   - Sync ends the superstep; afterwards all gets are filled and all
//     puts applied. One drma Sync costs two underlying BSP supersteps
//     (requests travel in the first, get replies in the second).
package drma

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/wire"
)

// Area is a handle to a registered memory region.
type Area struct {
	id int
}

// Ctx is one process's DRMA context over a BSP process handle. Like the
// Proc it wraps, a Ctx is confined to its process goroutine.
type Ctx struct {
	c     *core.Proc
	areas [][]byte
	out   []*wire.Writer
	// pending get destinations, filled when replies arrive.
	gets []pendingGet
}

type pendingGet struct {
	dst []byte
}

const (
	opPut = iota
	opGet
	opGetReply
)

// New returns a DRMA context for the process.
func New(c *core.Proc) *Ctx {
	x := &Ctx{c: c, out: make([]*wire.Writer, c.P())}
	for i := range x.out {
		x.out[i] = wire.NewWriter(0)
	}
	return x
}

// Proc returns the underlying BSP process handle.
func (x *Ctx) Proc() *core.Proc { return x.c }

// Register associates buf with the next area id. Register is collective:
// every process must register its areas in the same order (the id is
// positional, like bsp_push_reg). The registration is usable in the
// current superstep.
func (x *Ctx) Register(buf []byte) Area {
	x.areas = append(x.areas, buf)
	return Area{id: len(x.areas) - 1}
}

// AreaBytes returns this process's local buffer for a registered area
// (the memory Puts land in). The caller must not resize it.
func (x *Ctx) AreaBytes(a Area) []byte { return x.area(a.id) }

// area returns the local buffer for an area id.
func (x *Ctx) area(id int) []byte {
	if id < 0 || id >= len(x.areas) {
		panic(fmt.Sprintf("drma: unregistered area %d", id))
	}
	return x.areas[id]
}

// Put copies data into [off, off+len(data)) of dst's copy of area a at
// the end of the superstep. data is copied at call time.
func (x *Ctx) Put(dst int, a Area, off int, data []byte) {
	w := x.out[dst]
	w.Uint32(opPut)
	w.Uint32(uint32(a.id))
	w.Uint32(uint32(off))
	w.Uint32(uint32(len(data)))
	w.Raw(data)
}

// Get requests [off, off+len(dst)) of src's copy of area a; dst is
// filled when Sync returns. dst must not be written by the caller until
// then.
func (x *Ctx) Get(src int, a Area, off int, dst []byte) {
	idx := len(x.gets)
	x.gets = append(x.gets, pendingGet{dst: dst})
	w := x.out[src]
	w.Uint32(opGet)
	w.Uint32(uint32(a.id))
	w.Uint32(uint32(off))
	w.Uint32(uint32(len(dst)))
	w.Uint32(uint32(x.c.ID()))
	w.Uint32(uint32(idx))
}

// Sync ends the DRMA superstep: gets observe end-of-superstep values
// before puts land, then puts are applied, then get replies are
// delivered. Costs two core supersteps.
func (x *Ctx) Sync() {
	c := x.c
	for q := 0; q < c.P(); q++ {
		if x.out[q].Len() > 0 {
			c.Send(q, x.out[q].Bytes())
			x.out[q].Reset()
		}
	}
	c.Sync()
	// First: serve gets against the pre-put state; stash puts.
	type put struct {
		id, off int
		data    []byte
	}
	var puts []put
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 4 {
			switch r.Uint32() {
			case opPut:
				id := int(r.Uint32())
				off := int(r.Uint32())
				n := int(r.Uint32())
				puts = append(puts, put{id: id, off: off, data: r.Raw(n)})
			case opGet:
				id := int(r.Uint32())
				off := int(r.Uint32())
				n := int(r.Uint32())
				from := int(r.Uint32())
				idx := r.Uint32()
				buf := x.area(id)
				if off < 0 || off+n > len(buf) {
					panic(fmt.Sprintf("drma: get [%d,%d) outside area %d of %d bytes", off, off+n, id, len(buf)))
				}
				w := x.out[from]
				w.Uint32(opGetReply)
				w.Uint32(idx)
				w.Uint32(uint32(n))
				w.Raw(buf[off : off+n])
			default:
				panic("drma: corrupt operation stream")
			}
		}
	}
	// Then: apply puts (end-of-superstep writes).
	for _, p := range puts {
		buf := x.area(p.id)
		if p.off < 0 || p.off+len(p.data) > len(buf) {
			panic(fmt.Sprintf("drma: put [%d,%d) outside area %d of %d bytes", p.off, p.off+len(p.data), p.id, len(buf)))
		}
		copy(buf[p.off:], p.data)
	}
	// Second hop: deliver get replies.
	for q := 0; q < c.P(); q++ {
		if x.out[q].Len() > 0 {
			c.Send(q, x.out[q].Bytes())
			x.out[q].Reset()
		}
	}
	c.Sync()
	for {
		msg, ok := c.Recv()
		if !ok {
			break
		}
		r := wire.NewReader(msg)
		for r.Remaining() >= 4 {
			if op := r.Uint32(); op != opGetReply {
				panic("drma: unexpected operation in reply superstep")
			}
			idx := int(r.Uint32())
			n := int(r.Uint32())
			copy(x.gets[idx].dst, r.Raw(n))
		}
	}
	x.gets = x.gets[:0]
}
