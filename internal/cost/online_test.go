package cost

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestOnlineEstimatorRecovers: feeding synthetic supersteps generated
// from a known (g, L) must recover both parameters closely, even with
// multiplicative noise on the waits.
func TestOnlineEstimatorRecovers(t *testing.T) {
	const g, l = 2.5, 800.0 // µs/pkt, µs
	rng := rand.New(rand.NewSource(7))
	e := NewOnlineEstimator()
	for i := 0; i < 200; i++ {
		h := float64(100 + rng.Intn(4000))
		waitUs := (g*h + l) * (1 + 0.05*rng.NormFloat64())
		e.Observe(h, time.Duration(waitUs*1e3)*time.Nanosecond)
	}
	pm, ok := e.Fit()
	if !ok {
		t.Fatalf("Fit not ok after %d observations", e.N())
	}
	if math.Abs(pm.G-g)/g > 0.15 {
		t.Errorf("fitted g = %.3f, want ~%.1f", pm.G, g)
	}
	if math.Abs(pm.L-l)/l > 0.25 {
		t.Errorf("fitted L = %.1f, want ~%.0f", pm.L, l)
	}
}

// TestOnlineEstimatorDegenerate: constant h cannot identify a slope;
// the fit must report !ok but still hand back L = mean wait as the
// best available predictor, and never go negative.
func TestOnlineEstimatorDegenerate(t *testing.T) {
	e := NewOnlineEstimator()
	for i := 0; i < 50; i++ {
		e.Observe(1000, 3*time.Millisecond)
	}
	pm, ok := e.Fit()
	if ok {
		t.Error("Fit ok with zero spread in h")
	}
	if pm.G != 0 || math.Abs(pm.L-3000) > 1 {
		t.Errorf("degenerate fit = %+v, want G=0 L=~3000µs", pm)
	}

	// Decreasing wait with increasing h would fit a negative g; the
	// clamp must kick in.
	e2 := NewOnlineEstimator()
	for i := 0; i < 50; i++ {
		e2.Observe(float64(100+i*100), time.Duration(50-i)*time.Millisecond)
	}
	if pm2, _ := e2.Fit(); pm2.G < 0 || pm2.L < 0 {
		t.Errorf("clamp failed: %+v", pm2)
	}

	var nilE *OnlineEstimator
	nilE.Observe(1, time.Second)
	if _, ok := nilE.Fit(); ok || nilE.N() != 0 {
		t.Error("nil estimator must be inert")
	}
}

// TestOnlineEstimatorWindow: the ring must age old observations out,
// so a regime change (g doubles) moves the fit once the window rolls.
func TestOnlineEstimatorWindow(t *testing.T) {
	e := NewOnlineEstimator()
	rng := rand.New(rand.NewSource(11))
	feed := func(g float64, n int) {
		for i := 0; i < n; i++ {
			h := float64(100 + rng.Intn(2000))
			e.Observe(h, time.Duration((g*h+500)*1e3)*time.Nanosecond)
		}
	}
	feed(1.0, onlineWindow)
	feed(4.0, onlineWindow) // fully displaces the old regime
	pm, ok := e.Fit()
	if !ok || math.Abs(pm.G-4.0) > 0.4 {
		t.Errorf("fit after regime change = %+v ok=%v, want g~4.0", pm, ok)
	}
	if e.N() != onlineWindow {
		t.Errorf("window size %d, want %d", e.N(), onlineWindow)
	}
}
