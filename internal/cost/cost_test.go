package cost

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPredictEquation1(t *testing.T) {
	// T = W + g·H + L·S with W=1s, g=2µs, L=100µs, H=1000, S=10:
	// 1s + 2000µs + 1000µs = 1.003s.
	p := Params{G: 2, L: 100}
	got := p.Predict(time.Second, 1000, 10)
	want := time.Second + 3*time.Millisecond
	if got != want {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestCommTime(t *testing.T) {
	p := Params{G: 1, L: 10}
	if got := p.CommTime(100, 5); got != 150*time.Microsecond {
		t.Errorf("CommTime = %v, want 150µs", got)
	}
}

func TestPaperParams(t *testing.T) {
	// Spot checks against Figure 2.1.
	cases := []struct {
		m    Machine
		p    int
		g, l float64
	}{
		{SGI, 1, 0.77, 3},
		{SGI, 16, 0.95, 105},
		{Cenju, 8, 2.5, 1470},
		{Cenju, 16, 3.6, 2880},
		{PC, 2, 3.3, 540},
		{PC, 8, 8.6, 3715},
	}
	for _, c := range cases {
		got := c.m.Params(c.p)
		if got.G != c.g || got.L != c.l {
			t.Errorf("%s.Params(%d) = %+v, want g=%g L=%g", c.m.Name, c.p, got, c.g, c.l)
		}
	}
}

func TestParamsInterpolationMonotone(t *testing.T) {
	// L grows with p on every paper machine; interpolated values must
	// stay within the bracketing table entries.
	for _, m := range PaperMachines() {
		for _, p := range []int{3, 5, 6, 7} {
			if p > m.MaxProcs {
				continue
			}
			got := m.Params(p)
			lo, hi := m.Params(p-1), m.Params(p+1)
			if got.L < min(lo.L, hi.L) || got.L > max(lo.L, hi.L) {
				t.Errorf("%s.Params(%d).L = %g outside [%g, %g]", m.Name, p, got.L, lo.L, hi.L)
			}
		}
	}
}

func TestParamsClamp(t *testing.T) {
	if got := SGI.Params(32); got != SGI.ByProcs[16] {
		t.Errorf("Params beyond table = %+v, want clamp to 16-proc entry", got)
	}
	if got := PC.Params(16); got != PC.ByProcs[8] {
		t.Errorf("PC Params(16) = %+v, want clamp to 8-proc entry", got)
	}
}

func TestSupports(t *testing.T) {
	if PC.Supports(16) {
		t.Error("PC LAN has only 8 processors")
	}
	if !SGI.Supports(16) || !Cenju.Supports(16) || !PC.Supports(8) {
		t.Error("paper configurations must be supported")
	}
}

func TestMachineByName(t *testing.T) {
	for _, name := range []string{"SGI", "Cenju", "PC"} {
		m, err := MachineByName(name)
		if err != nil || m.Name != name {
			t.Errorf("MachineByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := MachineByName("CM-5"); err == nil {
		t.Error("unknown machine should fail")
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(10*time.Second, 2*time.Second); got != 5 {
		t.Errorf("Speedup = %g, want 5", got)
	}
	if got := Speedup(time.Second, 0); got != 0 {
		t.Errorf("Speedup with zero parallel time = %g, want 0", got)
	}
}

func TestScaleDefault(t *testing.T) {
	if (Machine{}).Scale() != 1 {
		t.Error("zero WorkScale should mean 1")
	}
	if (Machine{WorkScale: 0.5}).Scale() != 0.5 {
		t.Error("explicit WorkScale ignored")
	}
}

// TestQuickPredictMonotone: increasing any of W, H, S never decreases the
// predicted time on any paper machine.
func TestQuickPredictMonotone(t *testing.T) {
	f := func(w uint32, h, s uint16, dw uint16, dh, ds uint8) bool {
		for _, m := range PaperMachines() {
			for p := range m.ByProcs {
				base := m.Predict(p, time.Duration(w), int(h), int(s))
				more := m.Predict(p, time.Duration(w)+time.Duration(dw), int(h)+int(dh), int(s)+int(ds))
				if more < base {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPaperOceanPrediction reproduces one of the paper's predicted
// values: for Ocean size 514 on 16 SGI processors the paper reports
// W = 2.38 s, H = 69946, S = 312 and a predicted time of 2.48 s.
func TestPaperOceanPrediction(t *testing.T) {
	w := 2380 * time.Millisecond
	got := SGI.Predict(16, w, 69946, 312)
	want := 2480 * time.Millisecond
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 20*time.Millisecond {
		t.Errorf("predicted ocean time = %v, paper says 2.48s (±0.02)", got)
	}
}

// TestPaperNBodyPrediction: N-body 64k on 16 SGI processors: W = 4.95 s,
// H = 24661, S = 6, predicted 4.97 s.
func TestPaperNBodyPrediction(t *testing.T) {
	got := SGI.Predict(16, 4950*time.Millisecond, 24661, 6)
	want := 4970 * time.Millisecond
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 10*time.Millisecond {
		t.Errorf("predicted nbody time = %v, paper says 4.97s (±0.01)", got)
	}
}

// TestFigure11Breakpoint reproduces the Figure 1.1 observation: with the
// paper's measured ocean-130 program parameters, the PC profile predicts
// that "little will be gained by using 4 PCs rather than 2, and that
// performance will severely degrade when using 8 PCs".
func TestFigure11Breakpoint(t *testing.T) {
	// Paper Table C.1, ocean size 130 rows (W measured on SGI, H, S).
	rows := []struct {
		p    int
		w    time.Duration
		h, s int
	}{
		{1, 2120 * time.Millisecond, 91, 379},
		{2, 1210 * time.Millisecond, 20762, 379},
		{4, 660 * time.Millisecond, 21034, 379},
		{8, 370 * time.Millisecond, 25700, 379},
	}
	pred := make(map[int]time.Duration)
	for _, r := range rows {
		pred[r.p] = PC.Predict(r.p, r.w, r.h, r.s)
	}
	if gain := float64(pred[2]) / float64(pred[4]); gain > 1.25 {
		t.Errorf("4 PCs should gain little over 2: pred2=%v pred4=%v", pred[2], pred[4])
	}
	if pred[8] <= pred[4] {
		t.Errorf("8 PCs should degrade: pred4=%v pred8=%v", pred[4], pred[8])
	}
	if pred[8] <= pred[2] {
		t.Errorf("8 PCs should be worse than 2: pred2=%v pred8=%v", pred[2], pred[8])
	}
}

func TestParamsExtrapolated(t *testing.T) {
	// Within the table: identical to Params.
	if got := SGI.ParamsExtrapolated(8); got != SGI.ByProcs[8] {
		t.Errorf("in-table extrapolation changed values: %+v", got)
	}
	// Beyond: L keeps growing, never negative.
	p16 := SGI.ByProcs[16]
	p32 := SGI.ParamsExtrapolated(32)
	p64 := SGI.ParamsExtrapolated(64)
	if p32.L <= p16.L || p64.L <= p32.L {
		t.Errorf("extrapolated latency should grow: 16:%g 32:%g 64:%g", p16.L, p32.L, p64.L)
	}
	if p32.G < 0 || p64.G < 0 || p32.L < 0 {
		t.Error("extrapolated parameters must be non-negative")
	}
	cj := Cenju.ParamsExtrapolated(64)
	if cj.L <= Cenju.ByProcs[16].L {
		t.Errorf("Cenju extrapolated L = %g should exceed the 16-proc value", cj.L)
	}
}

func TestSortHLowerBound(t *testing.T) {
	if got := SortHLowerBound(100000, 1, 8); got != 0 {
		t.Errorf("p=1 bound = %d, want 0 (nothing must move)", got)
	}
	if got := SortHLowerBound(0, 4, 8); got != 0 {
		t.Errorf("n=0 bound = %d, want 0", got)
	}
	// p=4, n=16000 float64s: each rank holds 4000, 3/4 of them foreign
	// in the worst case -> 3000 elements = 24000 bytes = 1500 packets.
	if got := SortHLowerBound(16000, 4, 8); got != 1500 {
		t.Errorf("bound = %d, want 1500", got)
	}
	// Monotone in n, elemBytes; the per-rank share shrinks with p.
	if SortHLowerBound(32000, 4, 8) <= SortHLowerBound(16000, 4, 8) {
		t.Error("bound not monotone in n")
	}
	if SortHLowerBound(16000, 4, 16) <= SortHLowerBound(16000, 4, 8) {
		t.Error("bound not monotone in element size")
	}
	if SortHLowerBound(16000, 16, 8) >= SortHLowerBound(16000, 4, 8) {
		t.Error("per-rank bound should shrink as p grows")
	}
}
