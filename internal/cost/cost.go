// Package cost implements the BSP cost model of Valiant as used in the
// paper (Equation 1): the execution time of a program with work depth W,
// communication volume H and S supersteps on a machine with gap g and
// latency L is
//
//	T = W + g·H + L·S
//
// The two machine parameters follow the paper's definitions: "the gap g,
// which reflects network bandwidth on a per-processor basis, and the
// latency L, which is the minimum duration of a superstep". Figure 2.1's
// measured (g, L) values for the three evaluation platforms are embedded
// as machine profiles so that predicted times, speed-ups and performance
// breakpoints can be regenerated (DESIGN.md §2, substitution table).
package cost

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Params are the BSP machine parameters for one processor count.
type Params struct {
	// G is the time per 16-byte packet, in microseconds, "for a
	// sufficiently large superstep with a total-exchange communication
	// pattern".
	G float64
	// L is the minimum superstep duration in microseconds: "the time
	// for a superstep in which each processor sends a single packet".
	L float64
}

// Predict evaluates Equation 1 for a program with the given measured
// work depth, packet volume and superstep count.
func (p Params) Predict(w time.Duration, h, s int) time.Duration {
	us := float64(w)/1e3 + p.G*float64(h) + p.L*float64(s)
	return time.Duration(us * 1e3)
}

// CommTime returns the predicted communication-plus-synchronization time
// g·H + L·S (the "predicted communication times (including
// synchronization)" series of Figure 1.1).
func (p Params) CommTime(h, s int) time.Duration {
	return time.Duration((p.G*float64(h) + p.L*float64(s)) * 1e3)
}

// Machine is a named BSP platform: (g, L) per processor count, plus a
// relative local-computation speed used when transferring work
// measurements across platforms.
type Machine struct {
	// Name identifies the platform ("SGI", "Cenju", "PC", "Host").
	Name string
	// ByProcs maps a processor count to measured parameters.
	ByProcs map[int]Params
	// WorkScale multiplies work depths measured on the reference
	// platform. Speed-ups are ratios of predicted times on the same
	// machine, so WorkScale cancels there; it only shifts absolute
	// predictions. 0 means 1.
	WorkScale float64
	// MaxProcs is the largest configuration the platform supports
	// (16 for SGI/Cenju, 8 for the PC LAN).
	MaxProcs int
}

// Params returns the machine parameters for p processors. Exact table
// entries are returned as-is; other processor counts interpolate g and L
// linearly in log2(p) between the bracketing entries, and clamp beyond
// the table (the paper only tabulates powers of two plus 9).
func (m Machine) Params(p int) Params {
	if v, ok := m.ByProcs[p]; ok {
		return v
	}
	keys := make([]int, 0, len(m.ByProcs))
	for k := range m.ByProcs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	if p <= keys[0] {
		return m.ByProcs[keys[0]]
	}
	last := keys[len(keys)-1]
	if p >= last {
		return m.ByProcs[last]
	}
	lo := keys[0]
	for _, k := range keys {
		if k > p {
			hi := k
			a, b := m.ByProcs[lo], m.ByProcs[hi]
			t := (math.Log2(float64(p)) - math.Log2(float64(lo))) /
				(math.Log2(float64(hi)) - math.Log2(float64(lo)))
			return Params{G: a.G + t*(b.G-a.G), L: a.L + t*(b.L-a.L)}
		}
		lo = k
	}
	return m.ByProcs[last]
}

// ParamsExtrapolated returns machine parameters for processor counts
// beyond the measured table by continuing the log2(p)-linear trend of
// the two largest measured entries. The paper leaves large machines as
// future work (§5: "we plan to extend our study to several larger
// machines"); this extrapolation powers the scalability study
// (BenchmarkScalability) with clearly-labeled projected parameters.
func (m Machine) ParamsExtrapolated(p int) Params {
	keys := make([]int, 0, len(m.ByProcs))
	for k := range m.ByProcs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	last := keys[len(keys)-1]
	if p <= last {
		return m.Params(p)
	}
	if len(keys) < 2 {
		return m.ByProcs[last]
	}
	prev := keys[len(keys)-2]
	a, b := m.ByProcs[prev], m.ByProcs[last]
	t := (math.Log2(float64(p)) - math.Log2(float64(last))) /
		(math.Log2(float64(last)) - math.Log2(float64(prev)))
	g := b.G + t*(b.G-a.G)
	l := b.L + t*(b.L-a.L)
	return Params{G: math.Max(g, 0), L: math.Max(l, 0)}
}

// Scale returns the machine's work scale factor (default 1).
func (m Machine) Scale() float64 {
	if m.WorkScale == 0 {
		return 1
	}
	return m.WorkScale
}

// Predict evaluates Equation 1 on this machine for p processors, scaling
// the measured work depth by the machine's relative computation speed.
func (m Machine) Predict(p int, w time.Duration, h, s int) time.Duration {
	return m.Params(p).Predict(time.Duration(float64(w)*m.Scale()), h, s)
}

// Supports reports whether the machine has at least p processors.
func (m Machine) Supports(p int) bool {
	return m.MaxProcs == 0 || p <= m.MaxProcs
}

// String implements fmt.Stringer.
func (m Machine) String() string { return m.Name }

// Figure 2.1 of the paper: measured bandwidth cost g (microseconds per
// 16-byte packet) and latency cost L (microseconds per superstep).
var (
	// SGI is the shared-memory SGI Challenge (16× MIPS R4400).
	SGI = Machine{
		Name: "SGI",
		ByProcs: map[int]Params{
			1: {G: 0.77, L: 3}, 2: {G: 0.82, L: 16}, 4: {G: 0.88, L: 29},
			8: {G: 0.97, L: 52}, 9: {G: 1.0, L: 57}, 16: {G: 0.95, L: 105},
		},
		MaxProcs: 16,
	}
	// Cenju is the NEC Cenju (16× MIPS R4400, multistage network, MPI).
	Cenju = Machine{
		Name: "Cenju",
		ByProcs: map[int]Params{
			1: {G: 2.2, L: 130}, 2: {G: 2.2, L: 260}, 4: {G: 2.2, L: 470},
			8: {G: 2.5, L: 1470}, 9: {G: 2.7, L: 1680}, 16: {G: 3.6, L: 2880},
		},
		MaxProcs: 16,
	}
	// PC is the LAN of eight 166-MHz Pentium PCs on switched Ethernet.
	PC = Machine{
		Name: "PC",
		ByProcs: map[int]Params{
			1: {G: 0.92, L: 2}, 2: {G: 3.3, L: 540}, 4: {G: 4.8, L: 1556},
			8: {G: 8.6, L: 3715},
		},
		MaxProcs: 8,
	}
)

// PaperMachines lists the three evaluation platforms in paper order.
func PaperMachines() []Machine { return []Machine{SGI, Cenju, PC} }

// MachineByName returns one of the embedded machine profiles.
func MachineByName(name string) (Machine, error) {
	for _, m := range PaperMachines() {
		if m.Name == name {
			return m, nil
		}
	}
	return Machine{}, fmt.Errorf("cost: unknown machine %q (want SGI, Cenju or PC)", name)
}

// SortHLowerBound returns a lower bound, in 16-byte packet units, on
// the h-relation volume H that any BSP sort of n elements of elemBytes
// each must pay on p processors with balanced input and output — the
// bandwidth specialization of the Bilardi–Scquizzato–Silvestri BSP
// communication lower bounds (PAPERS.md): each processor holds n/p
// elements, of which a (p−1)/p fraction belong on another rank for a
// worst-case (indeed, for a random) input permutation, so some
// superstep sequence must move at least (1−1/p)·n/p elements through
// every rank's ports. Measured H at or near this bound certifies that
// the redistribution superstep, not the sample machinery, dominates
// communication.
func SortHLowerBound(n, p, elemBytes int) int {
	if p <= 1 || n <= 0 {
		return 0
	}
	elems := n / p * (p - 1) / p
	return (elems*elemBytes + 15) / 16
}

// Speedup returns t1/tp, the paper's speed-up definition ("the ratio of
// the parallel runtime and the runtime of the same program on a single
// processor"). It returns 0 when tp is 0.
func Speedup(t1, tp time.Duration) float64 {
	if tp == 0 {
		return 0
	}
	return float64(t1) / float64(tp)
}
