package cost

import (
	"math"
	"sync"
	"time"
)

// OnlineEstimator fits effective (g, L) from a running job's observed
// (h, sync wait) pairs — the live counterpart of the post-hoc probe
// that Params profiles capture offline. Equation 1 predicts the
// non-compute share of a superstep as g·h + L, so each telemetry
// interval contributes one observation (h per superstep, wait per
// superstep in µs) and an ordinary least-squares line through the
// window is exactly an (g, L) estimate: slope = g in µs per packet,
// intercept = L in µs.
//
// The window is a fixed-size ring: old intervals age out, so the fit
// tracks the network the job is on now (a transient straggler or a
// cold cache shifts the estimate only while it is in the window). All
// methods are safe for concurrent use.
type OnlineEstimator struct {
	mu   sync.Mutex
	obs  []gObs
	next int
	full bool
}

type gObs struct {
	h      float64 // packets in the superstep (max of fan-in/fan-out)
	waitUs float64 // barrier + exchange wait for that superstep, µs
}

// onlineWindow holds roughly a minute of 250ms telemetry intervals
// from a p=16 gang — enough samples to damp noise, small enough to
// track drift.
const onlineWindow = 256

// NewOnlineEstimator returns an estimator with the default window.
func NewOnlineEstimator() *OnlineEstimator {
	return &OnlineEstimator{obs: make([]gObs, 0, onlineWindow)}
}

// Observe adds one interval observation: h packet units moved per
// superstep and the sync wait per superstep. Non-finite or negative
// inputs are dropped.
func (e *OnlineEstimator) Observe(h float64, wait time.Duration) {
	if e == nil || h < 0 || wait < 0 || math.IsNaN(h) || math.IsInf(h, 0) {
		return
	}
	o := gObs{h: h, waitUs: float64(wait.Nanoseconds()) / 1e3}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.obs) < cap(e.obs) {
		e.obs = append(e.obs, o)
		return
	}
	e.obs[e.next] = o
	e.next = (e.next + 1) % len(e.obs)
	e.full = true
}

// N reports the number of observations currently in the window.
func (e *OnlineEstimator) N() int {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.obs)
}

// Fit returns the least-squares (g, L) over the current window. ok is
// false while the window is too small or degenerate (fewer than 2
// distinct h values — an intercept-only fit cannot separate g from L;
// in that case the returned Params carry L = mean wait and g = 0,
// which is still the best Eq-1 predictor available). Estimates are
// clamped at zero: a negative slope or intercept is measurement noise,
// not a machine that pays you to communicate.
func (e *OnlineEstimator) Fit() (pm Params, ok bool) {
	if e == nil {
		return Params{}, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	n := float64(len(e.obs))
	if n == 0 {
		return Params{}, false
	}
	var sh, sw, shh, shw float64
	for _, o := range e.obs {
		sh += o.h
		sw += o.waitUs
		shh += o.h * o.h
		shw += o.h * o.waitUs
	}
	det := n*shh - sh*sh
	meanWait := sw / n
	// det ~ n²·Var(h): no spread in h means slope is unidentifiable.
	if len(e.obs) < 4 || det <= 1e-9*n*shh || det <= 0 {
		return Params{G: 0, L: math.Max(meanWait, 0)}, false
	}
	g := (n*shw - sh*sw) / det
	l := (sw - g*sh) / n
	if g < 0 {
		g = 0
		l = meanWait
	}
	if l < 0 {
		l = 0
	}
	return Params{G: g, L: l}, true
}
