package lu

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/transport"
)

func TestSequentialReconstructs(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 40} {
		a := RandomMatrix(n, int64(n))
		f, err := Sequential(a, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if res := f.Reconstruct(a); res > 1e-10*float64(n) {
			t.Errorf("n=%d: PA-LU residual %g", n, res)
		}
	}
}

func TestSolve(t *testing.T) {
	const n = 24
	a := RandomMatrix(n, 3)
	f, err := Sequential(a, n)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := f.Solve(b)
	// Residual ||Ax - b||∞.
	worst := 0.0
	for i := 0; i < n; i++ {
		s := -b[i]
		for j := 0; j < n; j++ {
			s += a[i*n+j] * x[j]
		}
		worst = math.Max(worst, math.Abs(s))
	}
	if worst > 1e-9 {
		t.Errorf("solve residual %g", worst)
	}
}

func TestPivotingActuallyPivots(t *testing.T) {
	// A matrix needing row swaps: zero on the leading diagonal.
	a := []float64{
		0, 1, 0,
		1, 0, 0,
		0, 0, 1,
	}
	f, err := Sequential(a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Perm[0] == 0 {
		t.Error("no pivot swap on a zero leading entry")
	}
	if res := f.Reconstruct(a); res > 1e-12 {
		t.Errorf("residual %g", res)
	}
}

func TestSingularDetected(t *testing.T) {
	a := []float64{
		1, 2,
		2, 4, // rank 1
	}
	if _, err := Sequential(a, 2); err == nil || !strings.Contains(err.Error(), "singular") {
		t.Fatalf("want singular error, got %v", err)
	}
}

func TestParallelBitIdentical(t *testing.T) {
	const n = 32
	a := RandomMatrix(n, 7)
	want, err := Sequential(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 4, 8} {
		got, st, err := Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, a, n)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i := range want.LU {
			if got.LU[i] != want.LU[i] {
				t.Fatalf("p=%d: LU[%d] = %g != %g (must be bit-identical)", p, i, got.LU[i], want.LU[i])
			}
		}
		for i := range want.Perm {
			if got.Perm[i] != want.Perm[i] {
				t.Fatalf("p=%d: Perm[%d] differs", p, i)
			}
		}
		// One DRMA sync (= 2 core supersteps) per column.
		if st.S() != 2*n {
			t.Errorf("p=%d: S = %d, want %d (one DRMA sync per column)", p, st.S(), 2*n)
		}
	}
}

func TestParallelSingular(t *testing.T) {
	a := []float64{
		1, 2, 3,
		2, 4, 6,
		0, 0, 1,
	}
	_, _, err := Parallel(core.Config{P: 2, Transport: transport.ShmTransport{}}, a, 3)
	if err == nil || !strings.Contains(err.Error(), "singular") {
		t.Fatalf("want singular error, got %v", err)
	}
}

func TestParallelAcrossTransports(t *testing.T) {
	const n = 16
	a := RandomMatrix(n, 9)
	want, err := Sequential(a, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []transport.Transport{
		transport.XchgTransport{}, transport.TCPTransport{}, transport.SimTransport{},
	} {
		got, _, err := Parallel(core.Config{P: 3, Transport: tr}, a, n)
		if err != nil {
			t.Fatalf("%s: %v", tr.Name(), err)
		}
		for i := range want.LU {
			if got.LU[i] != want.LU[i] {
				t.Fatalf("%s: LU mismatch at %d", tr.Name(), i)
			}
		}
	}
}

func TestQuickFactorization(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed int64, nPick, pPick uint8) bool {
		n := int(nPick)%20 + 2
		p := int(pPick)%4 + 1
		a := RandomMatrix(n, seed)
		seq, err := Sequential(a, n)
		if err != nil {
			return true // singular random draw: nothing to compare
		}
		par, _, err := Parallel(core.Config{P: p, Transport: transport.SimTransport{}}, a, n)
		if err != nil {
			return false
		}
		for i := range seq.LU {
			if seq.LU[i] != par.LU[i] {
				return false
			}
		}
		return seq.Reconstruct(a) < 1e-9*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
