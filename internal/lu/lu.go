// Package lu implements dense LU factorization with partial pivoting on
// the BSP machine, using the DRMA layer for its communication — the
// "static computations that arise in scientific computing" the paper
// says the Oxford-style direct-remote-access interface is "well suited
// for" (§1.3), and the canonical BSP scientific kernel of the
// Bisseling-McColl line of work the paper cites ([5, 6]).
//
// Columns are distributed cyclically (column j on process j mod p). Each
// elimination step k is one DRMA superstep: the owner of column k
// selects the pivot, scales the multipliers, and Puts the (pivot index,
// multiplier column) into every process's registered exchange area; all
// processes then apply the row swap and the rank-1 update to their own
// columns. S = n supersteps, h = n−k−1 values per step — the perfectly
// predictable cost profile of a static computation.
//
// The parallel factorization performs the same floating-point operations
// in the same order per element as the sequential code, so L and U are
// bit-identical at every process count — the property the tests assert.
package lu

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/drma"
)

// Factorization holds PA = LU in packed form: L (unit diagonal, below)
// and U (on and above) share the n×n array; Perm is the row permutation
// (Perm[i] = source row of row i in the permuted matrix).
type Factorization struct {
	N    int
	LU   []float64
	Perm []int
}

// Sequential factors a copy of the n×n row-major matrix a with partial
// pivoting. It returns an error on a singular pivot.
func Sequential(a []float64, n int) (*Factorization, error) {
	f := &Factorization{N: n, LU: append([]float64(nil), a...), Perm: make([]int, n)}
	for i := range f.Perm {
		f.Perm[i] = i
	}
	for k := 0; k < n; k++ {
		// Pivot: largest magnitude in column k at or below the diagonal.
		piv, pmax := k, math.Abs(f.LU[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.LU[i*n+k]); v > pmax {
				piv, pmax = i, v
			}
		}
		if pmax == 0 {
			return nil, fmt.Errorf("lu: singular at column %d", k)
		}
		if piv != k {
			swapRows(f.LU, n, k, piv)
			f.Perm[k], f.Perm[piv] = f.Perm[piv], f.Perm[k]
		}
		d := f.LU[k*n+k]
		for i := k + 1; i < n; i++ {
			f.LU[i*n+k] /= d
		}
		for i := k + 1; i < n; i++ {
			l := f.LU[i*n+k]
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				f.LU[i*n+j] -= l * f.LU[k*n+j]
			}
		}
	}
	return f, nil
}

func swapRows(m []float64, n, a, b int) {
	for j := 0; j < n; j++ {
		m[a*n+j], m[b*n+j] = m[b*n+j], m[a*n+j]
	}
}

// Solve returns x with (PA)x = Pb, i.e. Ax = b.
func (f *Factorization) Solve(b []float64) []float64 {
	n := f.N
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.Perm[i]]
	}
	// Forward: Ly = Pb (unit diagonal).
	for i := 1; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= f.LU[i*n+j] * x[j]
		}
		x[i] = s
	}
	// Backward: Ux = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= f.LU[i*n+j] * x[j]
		}
		x[i] = s / f.LU[i*n+i]
	}
	return x
}

// Reconstruct returns P·A − L·U's max-norm, the standard factorization
// residual (0 up to round-off).
func (f *Factorization) Reconstruct(a []float64) float64 {
	n := f.N
	worst := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var lu float64
			kmax := min(i, j)
			for k := 0; k <= kmax; k++ {
				l := f.LU[i*n+k]
				if k == i {
					l = 1
				}
				var u float64
				if k <= j {
					u = f.LU[k*n+j]
				}
				if k == i && k <= j {
					lu += u
				} else if k < i && k <= j {
					lu += l * u
				}
			}
			worst = math.Max(worst, math.Abs(a[f.Perm[i]*n+j]-lu))
		}
	}
	return worst
}

// RandomMatrix returns a well-conditioned deterministic test matrix
// (random entries plus a dominant diagonal).
func RandomMatrix(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
	}
	for i := 0; i < n; i++ {
		a[i*n+i] += float64(n) / 4
	}
	return a
}

// colBytes is the exchange-area slot size per row: one float64.
const colBytes = 8

// Parallel factors the matrix on a BSP machine with column-cyclic
// distribution over the DRMA layer and returns the assembled
// factorization (identical to Sequential's bit-for-bit).
func Parallel(ccfg core.Config, a []float64, n int) (*Factorization, *core.Stats, error) {
	p := ccfg.P
	cols := make([][]float64, p) // cols[q]: owned columns, packed
	ownedIdx := make([][]int, p)
	for j := 0; j < n; j++ {
		q := j % p
		ownedIdx[q] = append(ownedIdx[q], j)
	}
	for q := 0; q < p; q++ {
		cols[q] = make([]float64, len(ownedIdx[q])*n)
		for cj, j := range ownedIdx[q] {
			for i := 0; i < n; i++ {
				cols[q][cj*n+i] = a[i*n+j]
			}
		}
	}
	perms := make([][]int, p)
	errs := make([]error, p)
	st, err := core.Run(ccfg, func(c *core.Proc) {
		perm, err := factorProc(c, cols[c.ID()], ownedIdx[c.ID()], n)
		perms[c.ID()] = perm
		errs[c.ID()] = err
	})
	if err != nil {
		return nil, nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, st, e
		}
	}
	f := &Factorization{N: n, LU: make([]float64, n*n), Perm: perms[0]}
	for q := 0; q < p; q++ {
		for cj, j := range ownedIdx[q] {
			for i := 0; i < n; i++ {
				f.LU[i*n+j] = cols[q][cj*n+i]
			}
		}
	}
	return f, st, nil
}

// factorProc is the per-process elimination loop.
func factorProc(c *core.Proc, myCols []float64, myIdx []int, n int) ([]int, error) {
	p := c.P()
	x := drma.New(c)
	// Exchange area: [0:8) pivot row index (uint64), [8:8+8n) multipliers.
	area := x.Register(make([]byte, 8+colBytes*n))
	buf := x.AreaBytes(area)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// localCol maps global column -> position in myCols, or -1.
	localCol := make([]int, n)
	for i := range localCol {
		localCol[i] = -1
	}
	for cj, j := range myIdx {
		localCol[j] = cj
	}
	scratch := make([]byte, 8+colBytes*n)
	for k := 0; k < n; k++ {
		owner := k % p
		if owner == c.ID() {
			col := myCols[localCol[k]*n:]
			piv, pmax := k, math.Abs(col[k])
			for i := k + 1; i < n; i++ {
				if v := math.Abs(col[i]); v > pmax {
					piv, pmax = i, v
				}
			}
			if pmax == 0 {
				// Mark singularity for everyone via an out-of-range pivot.
				piv = -1
			} else {
				if piv != k {
					col[k], col[piv] = col[piv], col[k]
				}
				d := col[k]
				for i := k + 1; i < n; i++ {
					col[i] /= d
				}
			}
			binary.LittleEndian.PutUint64(scratch[0:8], uint64(int64(piv)))
			for i := k; i < n; i++ {
				binary.LittleEndian.PutUint64(scratch[8+8*i:], math.Float64bits(col[i]))
			}
			for q := 0; q < p; q++ {
				x.Put(q, area, 0, scratch[:8+colBytes*n])
			}
			c.AddWork(n - k)
		}
		x.Sync()
		piv := int(int64(binary.LittleEndian.Uint64(buf[0:8])))
		if piv < 0 {
			return nil, fmt.Errorf("lu: singular at column %d", k)
		}
		if piv != k {
			perm[k], perm[piv] = perm[piv], perm[k]
		}
		// Apply the row swap to every owned column except the owner's
		// column k (already swapped before scaling) — partial pivoting
		// permutes the finished L columns too — then the rank-1 update
		// to columns right of k.
		for cj, j := range myIdx {
			col := myCols[cj*n:]
			if j != k && piv != k {
				col[k], col[piv] = col[piv], col[k]
			}
			if j <= k {
				continue
			}
			akj := col[k]
			if akj == 0 {
				continue
			}
			for i := k + 1; i < n; i++ {
				l := math.Float64frombits(binary.LittleEndian.Uint64(buf[8+8*i:]))
				col[i] -= l * akj
			}
			c.AddWork(n - k)
		}
	}
	return perm, nil
}
