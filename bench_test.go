// Benchmarks regenerating the paper's evaluation (one per table and
// figure; DESIGN.md §4) plus the ablation and extension experiments
// (DESIGN.md §5, A1–A4, E1–E2).
//
// Default sizes are scaled down so `go test -bench . -benchmem` finishes
// in minutes on a laptop; `go test -bench . -timeout 0 -args -full` runs
// the paper's sizes. Reported metrics: S (supersteps), Hpkts (summed
// h-relations), and model speed-ups on the paper machine profiles.
package repro

import (
	"flag"
	"fmt"
	"sync"
	"testing"

	"repro/internal/barrier"
	"repro/internal/cg"
	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/drma"
	"repro/internal/fmm"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/lu"
	"repro/internal/matmult"
	"repro/internal/nbody"
	"repro/internal/plasma"
	"repro/internal/psort"
	"repro/internal/radiosity"
	"repro/internal/sp"
	"repro/internal/transport"
)

var fullFlag = flag.Bool("full", false, "benchmark the paper's input sizes (slow)")

// collectOnce caches harness measurements across benchmark iterations so
// b.N > 1 does not redo identical deterministic sim runs.
var (
	collectMu    sync.Mutex
	collectCache = map[string][]harness.Row{}
)

func collectApp(b *testing.B, app string) []harness.Row {
	b.Helper()
	key := fmt.Sprintf("%s-full=%v", app, *fullFlag)
	collectMu.Lock()
	defer collectMu.Unlock()
	if rows, ok := collectCache[key]; ok {
		return rows
	}
	rows, err := harness.Collect(app, harness.Sizes(app, *fullFlag), harness.Procs(app))
	if err != nil {
		b.Fatal(err)
	}
	collectCache[key] = rows
	return rows
}

// reportShape attaches the headline shape metrics of an app's largest
// configuration to the benchmark output.
func reportShape(b *testing.B, rows []harness.Row) {
	b.Helper()
	factor := harness.CalibrationFactor(rows)
	last := rows[len(rows)-1]
	var base harness.Row
	for _, r := range rows {
		if r.Size == last.Size && r.NP == 1 {
			base = r
		}
	}
	b.ReportMetric(float64(last.S), "S")
	b.ReportMetric(float64(last.H), "Hpkts")
	b.ReportMetric(last.SpeedupCal(cost.SGI, base, factor), "spdpSGI")
	b.ReportMetric(last.SpeedupCal(cost.Cenju, base, factor), "spdpCenju")
	if cost.PC.Supports(last.NP) {
		b.ReportMetric(last.SpeedupCal(cost.PC, base, factor), "spdpPC")
	}
}

func benchTable(b *testing.B, app string) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		collectMu.Lock()
		delete(collectCache, fmt.Sprintf("%s-full=%v", app, *fullFlag))
		collectMu.Unlock()
		rows = collectApp(b, app)
	}
	reportShape(b, rows)
}

// BenchmarkTableC1_Ocean regenerates Table C.1 (ocean, all sizes × NP).
func BenchmarkTableC1_Ocean(b *testing.B) { benchTable(b, "ocean") }

// BenchmarkTableC2_MST regenerates Table C.2 (minimum spanning tree).
func BenchmarkTableC2_MST(b *testing.B) { benchTable(b, "mst") }

// BenchmarkTableC3_MatMult regenerates Table C.3 (Cannon's algorithm).
func BenchmarkTableC3_MatMult(b *testing.B) { benchTable(b, "mm") }

// BenchmarkTableC4_NBody regenerates Table C.4 (Barnes-Hut).
func BenchmarkTableC4_NBody(b *testing.B) { benchTable(b, "nbody") }

// BenchmarkTableC5_SP regenerates Table C.5 (shortest paths).
func BenchmarkTableC5_SP(b *testing.B) { benchTable(b, "sp") }

// BenchmarkTableC6_MSP regenerates Table C.6 (multiple shortest paths).
func BenchmarkTableC6_MSP(b *testing.B) { benchTable(b, "msp") }

// BenchmarkFig1_1_OceanBreakpoints regenerates the Figure 1.1 series and
// reports the breakpoint the paper highlights: on the PC profile, 4
// processors gain little over 2 and 8 degrade sharply.
func BenchmarkFig1_1_OceanBreakpoints(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = collectApp(b, "ocean")
	}
	factor := harness.CalibrationFactor(rows)
	sizes := harness.Sizes("ocean", *fullFlag)
	size := sizes[len(sizes)/2]
	pred := map[int]float64{}
	for _, r := range rows {
		if r.Size == size && cost.PC.Supports(r.NP) {
			pred[r.NP] = r.PredictCal(cost.PC, factor).Seconds()
		}
	}
	if pred[2] > 0 {
		b.ReportMetric(pred[2]/pred[4], "PCgain2to4")
		b.ReportMetric(pred[8]/pred[4], "PCdegrade8")
	}
}

// BenchmarkFig2_1_MachineParams measures this host's (g, L) per
// transport — the Figure 2.1 analogue.
func BenchmarkFig2_1_MachineParams(b *testing.B) {
	for _, tr := range []transport.Transport{
		transport.ShmTransport{}, transport.XchgTransport{}, transport.TCPTransport{},
	} {
		b.Run(tr.Name(), func(b *testing.B) {
			var pr cost.Params
			for i := 0; i < b.N; i++ {
				var err error
				pr, err = harness.MeasureParams(tr, 4)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(pr.G, "g_us")
			b.ReportMetric(pr.L, "L_us")
		})
	}
}

// BenchmarkFig3_1_SpeedupSummary regenerates the Figure 3.1 summary
// across all six applications.
func BenchmarkFig3_1_SpeedupSummary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, app := range harness.Apps() {
			collectApp(b, app)
		}
	}
	rows := collectApp(b, "nbody")
	reportShape(b, rows)
}

// BenchmarkFig3_2_ModelSummary regenerates the Figure 3.2 model summary
// and reports the 16-processor SGI prediction accuracy proxy: the ratio
// of communication to total predicted time for the N-body application
// (small in the paper; the model is compute-dominated there).
func BenchmarkFig3_2_ModelSummary(b *testing.B) {
	var rows []harness.Row
	for i := 0; i < b.N; i++ {
		rows = collectApp(b, "nbody")
	}
	factor := harness.CalibrationFactor(rows)
	last := rows[len(rows)-1]
	pred := last.PredictCal(cost.SGI, factor)
	comm := last.PredictComm(cost.SGI)
	b.ReportMetric(float64(comm)/float64(pred), "commFrac")
}

// BenchmarkAblationWorkFactor sweeps the shortest-paths work factor
// (DESIGN.md A1 / paper §3.4: "the work factor should grow with L").
func BenchmarkAblationWorkFactor(b *testing.B) {
	g := graph.Geometric(2500, 1996)
	for _, wf := range []int{20, 200, 2000, 20000} {
		b.Run(fmt.Sprintf("wf=%d", wf), func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = sp.ParallelSingle(core.Config{P: 4, Transport: transport.ShmTransport{}}, g, 0, sp.Config{WorkFactor: wf})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.S()), "S")
			b.ReportMetric(float64(st.H()), "Hpkts")
			// On a high-latency machine the small work factor loses:
			// predicted Cenju time per work factor.
			b.ReportMetric(cost.Cenju.Predict(4, st.W(), st.H(), st.S()).Seconds()*1e3, "CenjuPred_ms")
		})
	}
}

// BenchmarkAblationBarrier compares the barrier implementations
// (DESIGN.md A2; the paper's shared-memory library uses the central
// spin barrier of Appendix B.1).
func BenchmarkAblationBarrier(b *testing.B) {
	const p = 8
	for _, name := range barrier.Names() {
		b.Run(name, func(b *testing.B) {
			bar := barrier.New(name, p)
			var wg sync.WaitGroup
			b.ResetTimer()
			for id := 1; id < p; id++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < b.N; i++ {
						bar.Wait(id)
					}
				}()
			}
			for i := 0; i < b.N; i++ {
				bar.Wait(0)
			}
			wg.Wait()
		})
	}
}

// BenchmarkAblationPacketSize compares fixed 16-byte packets against the
// variable-length message extension for the same payload (DESIGN.md A3 /
// paper footnote 2).
func BenchmarkAblationPacketSize(b *testing.B) {
	const p, elems = 4, 512
	run := func(b *testing.B, fn func(c *core.Proc)) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, fn); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("pkt16", func(b *testing.B) {
		run(b, func(c *core.Proc) {
			var pkt core.Pkt
			for dst := 0; dst < p; dst++ {
				for k := 0; k < elems; k++ {
					c.SendPkt(dst, &pkt)
				}
			}
			c.Sync()
			for {
				if _, ok := c.GetPkt(); !ok {
					break
				}
			}
		})
	})
	b.Run("batched", func(b *testing.B) {
		payload := make([]byte, 16*elems)
		run(b, func(c *core.Proc) {
			for dst := 0; dst < p; dst++ {
				c.Send(dst, payload)
			}
			c.Sync()
			for {
				if _, ok := c.Recv(); !ok {
					break
				}
			}
		})
	})
}

// BenchmarkAblationShmLocking compares the shared-memory transport's
// writer-coordination strategies (paper Appendix B.1's 1000-packet chunk
// amortization vs per-packet locking vs dedicated blocks).
func BenchmarkAblationShmLocking(b *testing.B) {
	const p, msgs = 4, 2000
	for _, mode := range []string{"none", "chunk", "packet"} {
		b.Run(mode, func(b *testing.B) {
			tr := transport.ShmTransport{Locking: mode}
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{P: p, Transport: tr}, func(c *core.Proc) {
					var pkt core.Pkt
					for k := 0; k < msgs; k++ {
						c.SendPkt((c.ID()+1+k)%p, &pkt)
					}
					c.Sync()
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRepartition compares N-body ORB repartitioning
// thresholds (DESIGN.md A4 / §3.2: repartition only past a threshold).
// The run starts from a deliberately skewed assignment (every body on
// rank 0), so a tight threshold repartitions immediately while an
// infinite one never recovers; the work-depth metric exposes the load
// imbalance the threshold is meant to bound.
func BenchmarkAblationRepartition(b *testing.B) {
	const p, steps = 4, 3
	bodies := nbody.Plummer(1000, 1996)
	lo, hi := nbody.Bounds(bodies)
	for k := 0; k < 3; k++ {
		hi[k] += 1e-9
	}
	// A degenerate initial ORB (built from samples piled in one corner)
	// funnels almost every body onto one rank; only the threshold-driven
	// rebalancing can repair it.
	corner := make([]nbody.Vec3, 64)
	for i := range corner {
		corner[i] = lo
	}
	orb, err := nbody.BuildORB(corner, p, nbody.Box{Lo: lo, Hi: hi})
	if err != nil {
		b.Fatal(err)
	}
	for _, thr := range []float64{1.1, 1e9} {
		b.Run(fmt.Sprintf("thr=%g", thr), func(b *testing.B) {
			var st *core.Stats
			rebalances := 0
			for i := 0; i < b.N; i++ {
				var err error
				st, err = core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, func(c *core.Proc) {
					var mine []nbody.Body
					if c.ID() == 0 {
						mine = bodies
					}
					_, rb := nbody.Run(c, mine, orb, nbody.SimConfig{RebalanceThreshold: thr}, steps)
					if c.ID() == 0 {
						rebalances = rb
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rebalances), "rebalances")
			b.ReportMetric(st.W().Seconds()*1e3, "Wdepth_ms")
		})
	}
}

// BenchmarkExtensionSampleSort measures the oversampling sample sort
// (DESIGN.md E1): S = 4 at every size, the fully predictable cost
// shape of §4 with a deterministic (1+1/ℓ)·n/p imbalance bound.
func BenchmarkExtensionSampleSort(b *testing.B) {
	data := psort.RandomData(100000, 1996)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = psort.Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, data)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.S()), "S")
			b.ReportMetric(float64(st.H()), "Hpkts")
		})
	}
}

// BenchmarkExtensionCollectives compares the naive one-superstep
// broadcast against the two-phase broadcast (DESIGN.md E2 / §4
// "broadcast" as a predictable subroutine).
func BenchmarkExtensionCollectives(b *testing.B) {
	const p = 8
	for _, size := range []int{64, 4096, 65536} {
		payload := make([]byte, size)
		b.Run(fmt.Sprintf("naive/%dB", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, func(c *core.Proc) {
					collect.Broadcast(c, 0, payload)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("twophase/%dB", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, func(c *core.Proc) {
					collect.BroadcastTwoPhase(c, 0, payload)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransportExchange measures a fixed total exchange on every
// transport — the end-to-end library overhead comparison.
func BenchmarkTransportExchange(b *testing.B) {
	const p, msgs = 4, 64
	for _, tr := range []transport.Transport{
		transport.ShmTransport{}, transport.XchgTransport{},
		transport.TCPTransport{}, transport.SimTransport{},
	} {
		b.Run(tr.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := core.Run(core.Config{P: p, Transport: tr}, func(c *core.Proc) {
					var pkt core.Pkt
					for s := 0; s < 4; s++ {
						for dst := 0; dst < p; dst++ {
							for k := 0; k < msgs; k++ {
								c.SendPkt(dst, &pkt)
							}
						}
						c.Sync()
					}
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExtensionFMM measures the adaptive FMM (DESIGN.md E3 / §5
// future work) against the direct oracle cost.
func BenchmarkExtensionFMM(b *testing.B) {
	bodies := fmm.RandomBodies(4000, 1996)
	b.Run("fmm-seq", func(b *testing.B) {
		var tree *fmm.Tree
		for i := 0; i < b.N; i++ {
			_, tree = fmm.Forces(bodies, fmm.Config{})
		}
		b.ReportMetric(float64(tree.Interactions), "interactions")
	})
	b.Run("fmm-bsp-p4", func(b *testing.B) {
		var st *core.Stats
		for i := 0; i < b.N; i++ {
			var err error
			_, st, err = fmm.Parallel(core.Config{P: 4, Transport: transport.ShmTransport{}}, bodies, fmm.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(st.H()), "Hpkts")
		b.ReportMetric(float64(st.S()), "S")
	})
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fmm.DirectForces(bodies)
		}
	})
}

// BenchmarkExtensionPlasma measures the PIC step cost (DESIGN.md E4).
func BenchmarkExtensionPlasma(b *testing.B) {
	ps := plasma.TwoStream(20000, 0.2, 1e-4, 1996)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, _, st, err = plasma.Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, ps, plasma.Config{Steps: 5})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.H())/5, "Hpkts/step")
		})
	}
}

// BenchmarkExtensionDRMA compares a message-passing total exchange with
// the equivalent DRMA puts (DESIGN.md E5): the layered interface costs
// one extra superstep per sync plus header overhead.
func BenchmarkExtensionDRMA(b *testing.B) {
	const p, words = 4, 256
	b.Run("puts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, func(c *core.Proc) {
				x := drma.New(c)
				buf := make([]byte, 8*words*p)
				area := x.Register(buf)
				data := make([]byte, 8*words)
				for dst := 0; dst < p; dst++ {
					x.Put(dst, area, 8*words*c.ID(), data)
				}
				x.Sync()
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("messages", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, func(c *core.Proc) {
				data := make([]byte, 8*words)
				for dst := 0; dst < p; dst++ {
					c.Send(dst, data)
				}
				c.Sync()
				for {
					if _, ok := c.Recv(); !ok {
						break
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScalability projects the study to "several larger machines"
// (§5): N-body and Cannon at 32 and 64 processes on the sim transport,
// with log-extrapolated (g, L).
func BenchmarkScalability(b *testing.B) {
	bodies := nbody.Plummer(4000, 1996)
	n := 192
	a := matmult.RandomMatrix(n, 1)
	bm := matmult.RandomMatrix(n, 2)
	base := map[string]*core.Stats{}
	for _, p := range []int{1, 32, 64} {
		if p > 1 {
			b.Run(fmt.Sprintf("nbody/p=%d", p), func(b *testing.B) {
				var st *core.Stats
				for i := 0; i < b.N; i++ {
					var err error
					_, st, err = nbody.Parallel(core.Config{P: p, Transport: transport.SimTransport{}}, bodies, nbody.SimConfig{}, 1)
					if err != nil {
						b.Fatal(err)
					}
				}
				pr := cost.SGI.ParamsExtrapolated(p)
				pred := pr.Predict(st.W(), st.H(), st.S())
				if b1 := base["nbody"]; b1 != nil {
					pred1 := cost.SGI.Params(1).Predict(b1.W(), b1.H(), b1.S())
					b.ReportMetric(cost.Speedup(pred1, pred), "projSpdpSGI")
				}
				b.ReportMetric(float64(st.S()), "S")
			})
			b.Run(fmt.Sprintf("mm/p=%d", p), func(b *testing.B) {
				if _, err := matmult.GridSide(p); err != nil {
					b.Skip("not a perfect square")
				}
				var st *core.Stats
				for i := 0; i < b.N; i++ {
					var err error
					_, st, err = matmult.Parallel(core.Config{P: p, Transport: transport.SimTransport{}}, a, bm, n)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(st.H()), "Hpkts")
			})
			continue
		}
		_, stats, err := nbody.Parallel(core.Config{P: 1, Transport: transport.SimTransport{}}, bodies, nbody.SimConfig{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		base["nbody"] = stats
	}
}

// BenchmarkExtensionRadiosity measures the hierarchical radiosity solver
// (DESIGN.md E7 / §5 future work) and reports the link economy of the
// hierarchy.
func BenchmarkExtensionRadiosity(b *testing.B) {
	patches := radiosity.Room(32, 1, 1, 0.6)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = radiosity.Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, patches, radiosity.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.S()), "S")
			b.ReportMetric(float64(st.H()), "Hpkts")
		})
	}
	b.Run("links", func(b *testing.B) {
		var h *radiosity.Hierarchy
		for i := 0; i < b.N; i++ {
			var err error
			h, err = radiosity.Build(patches, radiosity.Config{})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(h.Links()), "links")
		b.ReportMetric(float64(h.Nodes()), "nodes")
	})
}

// BenchmarkExtensionLU measures the DRMA dense LU (DESIGN.md E8): one
// DRMA superstep per column, the static-communication profile §1.3
// attributes to the Oxford interface.
func BenchmarkExtensionLU(b *testing.B) {
	const n = 96
	a := lu.RandomMatrix(n, 1996)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st *core.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = lu.Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, a, n)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.S()), "S")
			b.ReportMetric(float64(st.H()), "Hpkts")
		})
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := lu.Sequential(a, n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtensionCG measures the sparse Laplacian CG (DESIGN.md E9):
// three supersteps per iteration with border-bounded h.
func BenchmarkExtensionCG(b *testing.B) {
	g := graph.Geometric(3000, 1996)
	rhs := make([]float64, g.N)
	for i := range rhs {
		rhs[i] = float64(i%13) - 6
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st *core.Stats
			var iters int
			for i := 0; i < b.N; i++ {
				var err error
				_, iters, st, err = cg.Parallel(core.Config{P: p, Transport: transport.ShmTransport{}}, g, rhs, cg.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(iters), "iters")
			b.ReportMetric(float64(st.H())/float64(iters), "Hpkts/iter")
		})
	}
}
