// Scientific computing example: the BSP numerics the paper situates its
// work among — dense LU with partial pivoting over the Oxford-style DRMA
// layer (§1.3: "static computations that arise in scientific computing")
// and sparse conjugate gradients on a graph Laplacian (Bisseling [5,6]).
//
// Run with: go run ./examples/scientific [-n 96] [-p 4]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/cg"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/lu"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 96, "dense matrix dimension")
	p := flag.Int("p", 4, "BSP processes")
	flag.Parse()
	ccfg := core.Config{P: *p, Transport: transport.ShmTransport{}}

	// Dense LU over DRMA.
	a := lu.RandomMatrix(*n, 42)
	seq, err := lu.Sequential(a, *n)
	if err != nil {
		log.Fatal(err)
	}
	par, st, err := lu.Parallel(ccfg, a, *n)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := range seq.LU {
		if par.LU[i] != seq.LU[i] {
			identical = false
			break
		}
	}
	fmt.Printf("dense LU %dx%d over DRMA on %d processes\n", *n, *n, *p)
	fmt.Printf("  PA-LU residual: %.2e; bit-identical to sequential: %v\n",
		par.Reconstruct(a), identical)
	fmt.Printf("  BSP cost: S=%d (one DRMA sync per column = 2 supersteps), H=%d packets\n",
		st.S(), st.H())
	for _, m := range []cost.Machine{cost.SGI, cost.Cenju} {
		fmt.Printf("  %-5s profile: predicted %v\n", m.Name, m.Predict(*p, st.W(), st.H(), st.S()))
	}

	// Sparse CG on a graph Laplacian.
	g := graph.Geometric(4000, 7)
	b := make([]float64, g.N)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}
	x, iters, st2, err := cg.Parallel(ccfg, g, b, cg.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsparse CG: (L+I)x = b on a %d-node geometric graph (%d edges)\n", g.N, g.Edges())
	fmt.Printf("  converged in %d iterations, residual %.2e\n", iters, cg.Residual(g, x, b))
	fmt.Printf("  BSP cost: S=%d (3 per iteration), H=%d packets (border-bounded)\n",
		st2.S(), st2.H())
}
