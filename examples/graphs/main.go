// Graphs example: the paper's three graph applications — minimum
// spanning tree (§3.3), single-source shortest paths (§3.4) and multiple
// shortest paths (§3.5) — on one geometric random graph, verified
// against their sequential baselines.
//
// Run with: go run ./examples/graphs [-n 2000] [-p 4] [-k 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/msp"
	"repro/internal/mst"
	"repro/internal/sp"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 2000, "graph nodes")
	p := flag.Int("p", 4, "BSP processes")
	k := flag.Int("k", 5, "simultaneous shortest-path sources")
	flag.Parse()
	cfg := core.Config{P: *p, Transport: transport.ShmTransport{}}

	fmt.Printf("generating G(δ): %d nodes uniform on the unit square, connected at the minimal radius...\n", *n)
	g := graph.Geometric(*n, 7)
	fmt.Printf("  %d edges, average degree %.1f\n", g.Edges(), float64(2*g.Edges())/float64(g.N))

	// Minimum spanning tree.
	seqTree := mst.Sequential(g)
	tree, st, err := mst.Parallel(cfg, g, mst.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMST: weight %.6f (sequential %.6f, diff %.1e), %d edges\n",
		tree.Weight, seqTree.Weight, math.Abs(tree.Weight-seqTree.Weight), len(tree.Edges))
	fmt.Printf("  BSP cost: S=%d, H=%d packets — conservative: bounded by border nodes\n", st.S(), st.H())

	// Single-source shortest paths.
	want := graph.Dijkstra(g, 0)
	dist, st, err := sp.ParallelSingle(cfg, g, 0, sp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for v := range want {
		worst = math.Max(worst, math.Abs(dist[v]-want[v]))
	}
	fmt.Printf("\nSP from node 0: max deviation from Dijkstra %.1e\n", worst)
	fmt.Printf("  BSP cost: S=%d (work factor %d pops/superstep), H=%d\n",
		st.S(), sp.DefaultWorkFactor, st.H())

	// Multiple simultaneous shortest paths share supersteps.
	srcs := msp.Sources(g, *k, 11)
	all, stM, err := msp.Parallel(cfg, g, srcs, sp.Config{})
	if err != nil {
		log.Fatal(err)
	}
	wantAll := msp.Sequential(g, srcs)
	worst = 0
	for i := range srcs {
		for v := range wantAll[i] {
			worst = math.Max(worst, math.Abs(all[i][v]-wantAll[i][v]))
		}
	}
	fmt.Printf("\nMSP with %d sources: max deviation %.1e\n", *k, worst)
	fmt.Printf("  BSP cost: S=%d — %d sources amortize the %d supersteps one source needs\n",
		stM.S(), *k, st.S())
}
