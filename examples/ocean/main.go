// Ocean example: the multigrid ocean eddy simulation (paper §3.1) on the
// BSP library. Prints an ASCII rendering of the stream function — the
// wind-driven gyre — and demonstrates the bit-identical parallel result.
//
// Run with: go run ./examples/ocean [-size 66] [-p 4] [-steps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/ocean"
	"repro/internal/transport"
)

func main() {
	size := flag.Int("size", 66, "grid size (2^k+2: 18, 34, 66, 130, ...)")
	p := flag.Int("p", 4, "BSP processes")
	steps := flag.Int("steps", 3, "timesteps")
	flag.Parse()

	cfg := ocean.Config{Size: *size, Steps: *steps}
	seq, cycles, err := ocean.Sequential(cfg)
	if err != nil {
		log.Fatal(err)
	}
	par, st, err := ocean.Parallel(core.Config{P: *p, Transport: transport.ShmTransport{}}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := range seq.Psi {
		if seq.Psi[i] != par.Psi[i] {
			identical = false
			break
		}
	}
	fmt.Printf("ocean %dx%d, %d timesteps, multigrid V-cycles per step: %v\n",
		*size, *size, *steps, cycles)
	fmt.Printf("parallel (p=%d) result bit-identical to sequential: %v\n", *p, identical)
	fmt.Printf("BSP cost: S=%d supersteps, H=%d packets, W=%v\n\n", st.S(), st.H(), st.W())

	// Render the gyre: sample the stream function on a coarse raster.
	const shades = " .:-=+*#%@"
	m := par.M
	var maxAbs float64
	for _, v := range par.Psi {
		maxAbs = math.Max(maxAbs, math.Abs(v))
	}
	const rows, cols = 16, 32
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			v := par.At(1+r*m/rows, 1+c*m/cols)
			idx := int(math.Abs(v) / (maxAbs + 1e-300) * float64(len(shades)-1))
			line[c] = shades[idx]
		}
		fmt.Println(string(line))
	}
	fmt.Printf("\n|ψ|max = %.3e (wind-driven gyre, fixed boundary)\n", maxAbs)
}
