// Matmult example: Cannon's algorithm (paper §3.6) on the BSP library,
// verified against the sequential blocked kernel, with the cost model's
// view of the communication pattern.
//
// Run with: go run ./examples/matmult [-n 144] [-p 9]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/matmult"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 144, "matrix dimension")
	p := flag.Int("p", 9, "BSP processes (perfect square)")
	flag.Parse()

	a := matmult.RandomMatrix(*n, 1)
	b := matmult.RandomMatrix(*n, 2)
	want := matmult.Sequential(a, b, *n)

	got, st, err := matmult.Parallel(core.Config{P: *p, Transport: transport.ShmTransport{}}, a, b, *n)
	if err != nil {
		log.Fatal(err)
	}
	var worst float64
	for i := range want {
		worst = math.Max(worst, math.Abs(got[i]-want[i]))
	}
	sq, _ := matmult.GridSide(*p)
	bn := *n / sq
	fmt.Printf("Cannon %dx%d on a %dx%d process grid (blocks %dx%d)\n", *n, *n, sq, sq, bn, bn)
	fmt.Printf("  max |C_parallel - C_sequential| = %.2e\n", worst)
	fmt.Printf("  S = %d supersteps (paper: 2(√p−1)+1 = %d)\n", st.S(), 2*(sq-1)+1)
	fmt.Printf("  H = %d packets (paper formula 2(√p−1)(n/√p)² = %d)\n", st.H(), 2*(sq-1)*bn*bn)
	for _, m := range cost.PaperMachines() {
		if !m.Supports(*p) {
			continue
		}
		pred := m.Predict(*p, st.W(), st.H(), st.S())
		comm := m.Params(*p).CommTime(st.H(), st.S())
		fmt.Printf("  %-5s profile: predicted %v of which communication %v (%.0f%%)\n",
			m.Name, pred, comm, 100*float64(comm)/float64(pred))
	}
}
