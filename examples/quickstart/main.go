// Quickstart: the Green BSP library in one file.
//
// Four processes run a total exchange with the three core operations
// (SendPkt, GetPkt, Sync), then build higher-level collectives on top of
// them, and finally print the measured BSP program parameters (W, H, S)
// with the cost model's predictions for the paper's three machines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/collect"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/transport"
)

func main() {
	const p = 4
	stats, err := core.Run(core.Config{P: p, Transport: transport.ShmTransport{}}, func(c *core.Proc) {
		// Superstep 1: every process sends one packet to every process.
		var pkt core.Pkt
		pkt[0] = byte(c.ID())
		for dst := 0; dst < p; dst++ {
			c.SendPkt(dst, &pkt)
		}
		c.Sync()
		// The packets sent in the previous superstep are now available.
		sum := 0
		for {
			got, ok := c.GetPkt()
			if !ok {
				break
			}
			sum += int(got[0])
		}
		if c.ID() == 0 {
			fmt.Printf("process 0 received rank-sum %d (want %d)\n", sum, p*(p-1)/2)
		}
		// Collectives are built from the same three primitives.
		total := collect.AllReduce(c, float64(c.ID()+1), collect.SumFloat)
		if c.ID() == 0 {
			fmt.Printf("AllReduce sum over ranks+1: %.0f (want %d)\n", total, p*(p+1)/2)
		}
		msg := collect.Broadcast(c, 0, []byte("hello, BSP"))
		if c.ID() == p-1 {
			fmt.Printf("process %d received broadcast: %s\n", c.ID(), msg)
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBSP program parameters: W=%v H=%d packets S=%d supersteps\n",
		stats.W(), stats.H(), stats.S())
	for _, m := range cost.PaperMachines() {
		fmt.Printf("  predicted time on %-5s (Figure 2.1 g,L): %v\n",
			m.Name, m.Predict(p, stats.W(), stats.H(), stats.S()))
	}
}
