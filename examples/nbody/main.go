// N-body example: a Barnes-Hut simulation of a Plummer star cluster on
// the BSP library (paper §3.2), with energy tracking and a comparison
// against the sequential code.
//
// Run with: go run ./examples/nbody [-n 2000] [-p 4] [-steps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/nbody"
	"repro/internal/transport"
)

func main() {
	n := flag.Int("n", 2000, "number of bodies")
	p := flag.Int("p", 4, "BSP processes (power of two)")
	steps := flag.Int("steps", 3, "simulation steps")
	flag.Parse()

	bodies := nbody.Plummer(*n, 42)
	cfg := nbody.SimConfig{}
	e0 := nbody.Energy(bodies, cfg)
	fmt.Printf("Plummer cluster: %d bodies, initial energy %.4f (ideal -0.25)\n", *n, e0)

	seq := append([]nbody.Body(nil), bodies...)
	nbody.Sequential(seq, cfg, *steps)

	final, stats, err := nbody.Parallel(core.Config{P: *p, Transport: transport.ShmTransport{}}, bodies, cfg, *steps)
	if err != nil {
		log.Fatal(err)
	}
	e1 := nbody.Energy(final, cfg)
	fmt.Printf("after %d steps on %d processes: energy %.4f (drift %.2f%%)\n",
		*steps, *p, e1, 100*math.Abs((e1-e0)/e0))

	// Parallel and sequential Barnes-Hut agree to force accuracy.
	var worst float64
	for _, b := range final {
		best := math.Inf(1)
		for _, sb := range seq {
			if d := b.Pos.Sub(sb.Pos).Norm2(); d < best {
				best = d
			}
		}
		worst = math.Max(worst, math.Sqrt(best))
	}
	fmt.Printf("max displacement vs sequential Barnes-Hut: %.2e\n", worst)
	fmt.Printf("BSP cost: S=%d supersteps (paper: 6 per step), H=%d packets, W=%v\n",
		stats.S(), stats.H(), stats.W())
	fmt.Printf("predicted on 16-proc SGI profile: %v\n",
		cost.SGI.Predict(16, stats.W(), stats.H(), stats.S()))
}
