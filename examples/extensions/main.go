// Extensions example: the two systems the paper points to beyond its six
// applications — the adaptive Fast Multipole Method (§5, future work)
// and a BSP plasma simulation (§1.3, related work [28]) — both running
// on the same Green BSP library.
//
// Run with: go run ./examples/extensions
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"

	"repro/internal/core"
	"repro/internal/fmm"
	"repro/internal/plasma"
	"repro/internal/transport"
)

func main() {
	cfg := core.Config{P: 4, Transport: transport.ShmTransport{}}

	// --- Adaptive FMM ---
	const n = 3000
	bodies := fmm.RandomBodies(n, 1)
	forces, st, err := fmm.Parallel(cfg, bodies, fmm.Config{})
	if err != nil {
		log.Fatal(err)
	}
	exact := fmm.DirectForces(bodies)
	var errSum float64
	for i := range forces {
		if cmplx.Abs(exact[i]) > 0 {
			errSum += cmplx.Abs(forces[i]-exact[i]) / cmplx.Abs(exact[i])
		}
	}
	fmt.Printf("adaptive FMM: %d clustered bodies on %d processes\n", n, cfg.P)
	fmt.Printf("  mean relative force error vs direct O(N²): %.2e\n", errSum/float64(n))
	fmt.Printf("  BSP cost: S=%d supersteps, H=%d packets\n\n", st.S(), st.H())

	// --- Plasma two-stream instability ---
	ps := plasma.TwoStream(8000, 0.2, 1e-4, 2)
	pcfg := plasma.Config{Steps: 60, DT: 0.2}
	_, energy, st2, err := plasma.Parallel(cfg, ps, pcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plasma PIC: two-stream instability, %d particles, %d steps\n", len(ps), pcfg.Steps)
	fmt.Printf("  field energy grew %.0f× (seeded at %.1e)\n",
		energy[len(energy)-1]/energy[0], energy[0])
	fmt.Printf("  BSP cost: S=%d supersteps, H=%d packets\n\n", st2.S(), st2.H())

	// ASCII log-plot of the instability growth.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range energy {
		l := math.Log10(e)
		lo, hi = math.Min(lo, l), math.Max(hi, l)
	}
	const rows = 12
	fmt.Println("log10(field energy) over time:")
	for r := rows; r >= 0; r-- {
		level := lo + (hi-lo)*float64(r)/rows
		line := make([]byte, len(energy))
		for i, e := range energy {
			if math.Log10(e) >= level {
				line[i] = '#'
			} else {
				line[i] = ' '
			}
		}
		fmt.Printf("%7.1f |%s\n", level, line)
	}
}
